package cluster

import (
	"math"
	"testing"

	"github.com/lightllm-go/lightllm/internal/engine"
	"github.com/lightllm-go/lightllm/internal/metrics"
)

func TestConstantPredictor(t *testing.T) {
	p := ConstantPredictor.New()
	p.Observe(3)
	p.Observe(7)
	if got := p.Predict(); got != 7 {
		t.Fatalf("constant predicts %v, want last observation 7", got)
	}
}

func TestEWMAPredictorSmooths(t *testing.T) {
	p := EWMAPredictor.New()
	p.Observe(10)
	p.Observe(0)
	got := p.Predict()
	if got <= 0 || got >= 10 {
		t.Fatalf("ewma %v not between the observations", got)
	}
	// Converges to a constant signal.
	for i := 0; i < 50; i++ {
		p.Observe(4)
	}
	if math.Abs(p.Predict()-4) > 1e-6 {
		t.Fatalf("ewma did not converge to 4: %v", p.Predict())
	}
}

func TestHoltPredictorExtrapolatesTrend(t *testing.T) {
	p := HoltPredictor.New()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		p.Observe(v)
	}
	// On an exactly linear series Holt's recurrences are exact: the
	// forecast is the next point.
	if got := p.Predict(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("holt predicts %v for 1..5, want 6", got)
	}
	// An EWMA on the same ramp lags behind.
	e := EWMAPredictor.New()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		e.Observe(v)
	}
	if e.Predict() >= p.Predict() {
		t.Fatalf("ewma %v should lag holt %v on a ramp", e.Predict(), p.Predict())
	}
}

func TestParsePredictor(t *testing.T) {
	for _, k := range []PredictorKind{ConstantPredictor, EWMAPredictor, HoltPredictor} {
		got, err := ParsePredictor(k.String())
		if err != nil || got != k {
			t.Fatalf("round-trip %v: got %v, %v", k, got, err)
		}
	}
	if _, err := ParsePredictor("prophet"); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

func TestReplicaThroughputInterpolation(t *testing.T) {
	pm := testPerf()
	capTokens := pm.CapacityTokens()

	loose, _, _ := replicaThroughput(pm, capTokens, 500, 300, 10, 1.5)
	tight, _, tightTPOT := replicaThroughput(pm, capTokens, 500, 300, 10, 0.05)
	if loose <= 0 || tight <= 0 {
		t.Fatalf("throughput not positive: loose %v tight %v", loose, tight)
	}
	if tight > loose {
		t.Fatalf("tighter TPOT target yields higher throughput: %v > %v", tight, loose)
	}
	if tightTPOT > 0.05 {
		t.Fatalf("operating point %v violates the TPOT target", tightTPOT)
	}

	// A TTFT target below the prefill time of a single prompt is infeasible.
	if r, predTTFT, _ := replicaThroughput(pm, capTokens, 4000, 300, 1e-6, 1.5); r != 0 || predTTFT <= 0 {
		t.Fatalf("infeasible TTFT returned rate %v (pred %v)", r, predTTFT)
	}
}

func TestCorrectionFactorClamps(t *testing.T) {
	c := updateCorrection(1, 1000, 1) // observed 1000× worse than predicted
	if c > correctionCeil {
		t.Fatalf("correction %v above ceiling", c)
	}
	for i := 0; i < 20; i++ {
		c = updateCorrection(c, 1, 1000)
	}
	if c < correctionFloor {
		t.Fatalf("correction %v below floor", c)
	}
	if got := updateCorrection(2, 0, 1); got != 2 {
		t.Fatalf("zero observation mutated correction: %v", got)
	}
}

func TestPlannerTargetScalesWithRate(t *testing.T) {
	pm := testPerf()
	f := &flavor{name: "test", pm: pm, capacity: pm.CapacityTokens(), cost: 1, relSpeed: 1, reps: make([]*replica, 8)}
	for _, homogeneous := range []bool{false, true} {
		p := newPlanner(PlannerConfig{
			SLA: metrics.SLASmall, Min: 1, Max: 8, Interval: 10, Predictor: ConstantPredictor,
		}.withDefaults(), []*flavor{f}, engine.RoleMixed, homogeneous)
		total := func(rate float64) int {
			n := 0
			for _, tgt := range p.sizeTargets(rate, 500, 300) {
				n += tgt
			}
			return n
		}
		low := total(0.5)
		high := total(50)
		if low < 1 || high > 8 {
			t.Fatalf("homogeneous=%v: targets outside bounds: %d, %d", homogeneous, low, high)
		}
		if high <= low {
			t.Fatalf("homogeneous=%v: 100× the load did not raise the target: %d -> %d", homogeneous, low, high)
		}
	}
}
