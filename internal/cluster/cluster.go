// Package cluster is the fleet layer between the serving engine and the
// world: an event-driven multi-replica simulator with predictive,
// SLA-driven autoscaling — the paper's §7 future-work proposal (routing by
// predicted future memory demand) grown into a real subsystem.
//
// The layer is built from role-aware pools. A Pool owns replicas that all
// execute one serving phase (engine.RoleMixed, RolePrefillOnly,
// RoleDecodeOnly) behind a routing policy and an optional autoscaler; a
// Cluster composes pools behind a single event min-heap (replica engine
// steps, replica activations, autoscaler ticks, KV-handoff deliveries) so
// every pool shares one simulated clock. Two topologies are supported:
//
//   - Monolithic: one RoleMixed pool. This is the PR 2 fleet, unchanged —
//     Fleet is now a thin wrapper over this degenerate cluster.
//   - Disaggregated (Dynamo/DistServe/Splitwise-style): a prefill pool and
//     a decode pool behind a two-stage router. Arrivals take a
//     FutureHeadroom (or RR/least-loaded) pick in the prefill pool; a
//     prefill-only engine completes the request at its first token and
//     hands it off; the KV cache crosses a kv.Link (bandwidth + latency +
//     optional serialization, so the handoff is simulated, not free); on
//     delivery the request takes a second FutureHeadroom pick in the
//     decode pool and is admitted through engine.SubmitMigrated with its
//     KV footprint pre-seeded.
//
// Routing probes go through one warm core.PeakEstimator per replica: the
// estimator is rebuilt only when its replica's state changed, and each
// probe is an O(log B) PeakWith — no per-probe clone+sort, no per-probe
// allocations. Autoscaling is per pool: the threshold-reactive
// high/low-water policy, or the predictive SLA planner (PlannerConfig)
// that forecasts load and scales straight to the replica count whose
// interpolated latency meets the targets — TTFT sizes a prefill pool,
// TPOT sizes a decode pool, both size a mixed pool.
//
// With AdmissionConfig the arrival path becomes a cluster-front admission
// pipeline (admission.go): arrivals the probes cannot place are held in a
// deadline-indexed global EDF queue, released on capacity events (replica
// steps that freed a request, activations, KV deliveries, autoscaler
// moves) instead of per-tick polling, and shed — request.OutcomeShed —
// once their remaining TTFT budget cannot cover the predicted prefill +
// transfer floor. Handoffs whose expected delivery already overruns the
// deadline are dropped at the prefill→transfer boundary, before any link
// bandwidth is booked.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"github.com/lightllm-go/lightllm/internal/engine"
	"github.com/lightllm-go/lightllm/internal/kv"
	"github.com/lightllm-go/lightllm/internal/obs"
	"github.com/lightllm-go/lightllm/internal/request"
)

// Handoff records one prefill→decode KV migration, complete after its
// delivery event fired.
type Handoff struct {
	// Req is the migrating request.
	Req *request.Request
	// FromReplica / ToReplica are pool-local replica indexes (prefill pool
	// source, decode pool destination; To is -1 until delivered).
	FromReplica, ToReplica int
	// PrefillDoneAt is when the prefill engine emitted the handoff;
	// DeliveredAt is when the transfer landed on the decode side. The
	// difference is the simulated transfer delay (queueing included).
	PrefillDoneAt, DeliveredAt float64
	// Retries counts failed deliveries of this handoff that were re-booked
	// on the link (fault injection); 0 on a healthy wire.
	Retries int

	// bytes is the booked transfer size, kept for fault-injected re-bookings.
	bytes int64
}

// ClusterConfig configures a Cluster.
type ClusterConfig struct {
	// Pools composes the cluster. Exactly one RoleMixed pool (monolithic),
	// or exactly two pools — RolePrefillOnly then RoleDecodeOnly
	// (disaggregated).
	Pools []Config
	// Link models the prefill→decode KV transfer path. nil makes handoffs
	// instantaneous (a modeling upper bound). Ignored for monolithic
	// clusters.
	Link *kv.Link
	// Admission enables cluster-front admission control: arrivals the
	// FutureHeadroom probe cannot place now are held in a deadline-indexed
	// global queue (EDF over TTFT deadlines), released on capacity events,
	// and — with shedding — refused once their remaining budget cannot
	// cover the predicted service floor. nil routes every arrival
	// immediately (the pre-admission behavior).
	Admission *AdmissionConfig
	// OnHandoff, when non-nil, observes every completed KV migration at its
	// delivery time.
	OnHandoff func(h Handoff)
	// Faults enables deterministic fault injection and recovery (faults.go).
	// nil — or an empty schedule — leaves the cluster bit-identical to the
	// pre-fault path.
	Faults *FaultConfig
	// Recorder, when non-nil, receives the full request-lifecycle event
	// stream (internal/obs): arrivals, admission holds/releases/sheds,
	// placements, engine iterations, KV-transfer bookings and deliveries,
	// faults, planner decisions. A strict observer — it is sampled at
	// execution points the simulator already visits and never pushes heap
	// events — so recorded runs make bit-identical decisions to unrecorded
	// ones. nil disables every emission site at zero cost.
	Recorder obs.Recorder
	// Workers selects the simulation core. 0 (the default) is the
	// single-threaded reference event loop, unchanged. Any positive value
	// switches to the conservatively batched core (parallel.go): engine
	// steps that provably cannot influence one another run as a batch —
	// concurrently on Workers goroutines when Workers ≥ 2, inline when
	// Workers == 1 (same machinery, no goroutines: the coordination-overhead
	// baseline) — with their cluster-visible effects replayed in event-pop
	// order. Results are bit-identical to the reference for every Workers
	// value. Requires each replica to own its engine and scheduler outright
	// (validated), and every hook to be installed before NewCluster (hooks
	// added later would fire on worker goroutines).
	Workers int
}

// Cluster composes role-aware pools behind one event min-heap — the single
// clock every pool shares — and the two-stage disaggregated router.
type Cluster struct {
	cfg   ClusterConfig
	pools []*Pool

	events eventHeap
	evSeq  int64

	entry  int // pool receiving external arrivals
	decode int // pool receiving KV deliveries (== entry when monolithic)

	link *kv.Link
	// minKVBytesPerToken is the smallest per-token KV footprint across the
	// entry pool's flavors — the optimistic transfer size the admission
	// floor prices (a request is only refused when *no* flavor could make
	// its deadline). Actual bookings size by the source replica's own model.
	minKVBytesPerToken int64
	handoffs           []Handoff

	adm *admission
	flt *faultState

	rec obs.Recorder
	// lastBook captures the most recent link booking (wire start after lane
	// queueing, completion) between ScheduleTo and the XferBook emission —
	// the kv package reports timing through Link.OnSchedule without knowing
	// about the recorder.
	lastBook struct {
		start, done float64
		ok          bool
	}

	started bool
	startAt float64
	endAt   float64

	// Parallel-core state (parallel.go). workers == 0 on the reference path.
	workers      int
	runner       *stepRunner
	batch        []stepEntry
	popped       int64 // events handled, the bench's events/sec numerator
	batches      int64 // step batches formed (parallel core only)
	batchedSteps int64 // steps executed through batches
}

// NewCluster validates the configuration and builds a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	c := &Cluster{cfg: cfg, link: cfg.Link, decode: -1}
	switch len(cfg.Pools) {
	case 1:
		if cfg.Pools[0].Role != engine.RoleMixed {
			return nil, fmt.Errorf("cluster: a single pool must be %v, got %v",
				engine.RoleMixed, cfg.Pools[0].Role)
		}
		c.entry, c.decode = 0, 0
	case 2:
		if cfg.Pools[0].Role != engine.RolePrefillOnly || cfg.Pools[1].Role != engine.RoleDecodeOnly {
			return nil, fmt.Errorf("cluster: two pools must be (%v, %v), got (%v, %v)",
				engine.RolePrefillOnly, engine.RoleDecodeOnly, cfg.Pools[0].Role, cfg.Pools[1].Role)
		}
		c.entry, c.decode = 0, 1
	default:
		return nil, fmt.Errorf("cluster: %d pools; want one mixed or prefill+decode", len(cfg.Pools))
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("cluster: negative worker count %d", cfg.Workers)
	}
	for i, pc := range cfg.Pools {
		if pc.Admission != nil {
			return nil, fmt.Errorf("cluster: pool %d carries an AdmissionConfig; admission is cluster-wide, set ClusterConfig.Admission", i)
		}
		if pc.Recorder != nil {
			return nil, fmt.Errorf("cluster: pool %d carries a Recorder; observability is cluster-wide, set ClusterConfig.Recorder", i)
		}
		if pc.Workers != 0 {
			return nil, fmt.Errorf("cluster: pool %d carries a worker count; the simulation core is cluster-wide, set ClusterConfig.Workers", i)
		}
		p, err := newPool(c, i, pc)
		if err != nil {
			return nil, err
		}
		c.pools = append(c.pools, p)
	}
	if c.Disaggregated() {
		for _, f := range c.pools[c.entry].flavors {
			if bpt := f.pm.Spec().KVBytesPerToken(); c.minKVBytesPerToken == 0 || bpt < c.minKVBytesPerToken {
				c.minKVBytesPerToken = bpt
			}
		}
		for _, rep := range c.pools[c.entry].reps {
			rep := rep
			rep.eng.AddHandoffHook(func(now float64, r *request.Request) {
				c.onHandoff(rep.idx, now, r)
			})
		}
	}
	if cfg.Admission != nil {
		adm, err := newAdmission(c, *cfg.Admission)
		if err != nil {
			return nil, err
		}
		c.adm = adm
	}
	if cfg.Faults != nil {
		sizes := make([]int, len(c.pools))
		for i, p := range c.pools {
			sizes[i] = len(p.reps)
		}
		flt, err := newFaultState(*cfg.Faults, sizes)
		if err != nil {
			return nil, err
		}
		c.flt = flt
	}
	if cfg.Recorder != nil {
		c.rec = cfg.Recorder
		for _, p := range c.pools {
			for _, rep := range p.reps {
				rep.eng.SetRecorder(c.rec, p.id, rep.idx)
			}
		}
		if c.link != nil {
			c.link.OnSchedule = func(now, start, done float64, bytes int64, dst int) {
				c.lastBook.start, c.lastBook.done, c.lastBook.ok = start, done, true
			}
		}
	}
	if c.link != nil && c.Disaggregated() {
		// Handoffs book per-destination lanes keyed by decode replica index:
		// size the lane table once so a day-long replay never grows it.
		c.link.PreallocateLanes(len(c.pools[c.decode].reps))
	}
	if cfg.Workers > 0 {
		// Arm the batched core last: DeferEffects wraps whatever hooks exist
		// at this point (pool planner observers, admission slack, handoffs,
		// recorder emission), so every install above must already be done.
		if err := c.validateParallel(); err != nil {
			return nil, err
		}
		c.workers = cfg.Workers
		for _, p := range c.pools {
			for _, rep := range p.reps {
				rep.buf = rep.eng.DeferEffects()
			}
		}
	}
	return c, nil
}

// MustNewCluster is NewCluster for statically valid configurations.
func MustNewCluster(cfg ClusterConfig) *Cluster {
	c, err := NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Disaggregated reports whether the cluster splits prefill and decode.
func (c *Cluster) Disaggregated() bool { return c.decode != c.entry }

// NumPools returns the number of pools.
func (c *Cluster) NumPools() int { return len(c.pools) }

// Pool returns the i-th pool (0 = entry/prefill, 1 = decode when
// disaggregated).
func (c *Cluster) Pool(i int) *Pool { return c.pools[i] }

// Handoffs returns every recorded KV migration (complete after Serve). A
// handoff record exists only for booked transfers: a request shed at the
// prefill→transfer boundary never appears here and never consumed link
// bandwidth.
func (c *Cluster) Handoffs() []Handoff { return c.handoffs }

// ShedRequests returns every request refused by admission control, in shed
// order (nil without admission control). Complete after Serve.
func (c *Cluster) ShedRequests() []*request.Request {
	if c.adm == nil {
		return nil
	}
	return c.adm.shedList
}

// HeldRequests returns the number of arrivals currently held at the
// cluster front (0 after Serve: the run flush-sheds leftovers).
func (c *Cluster) HeldRequests() int {
	if c.adm == nil {
		return 0
	}
	return c.adm.Held()
}

// ReplicaSeconds returns the provisioned-time integral across all pools.
func (c *Cluster) ReplicaSeconds() float64 {
	sum := 0.0
	for _, p := range c.pools {
		sum += p.ReplicaSeconds()
	}
	return sum
}

// CostSeconds returns the normalized provisioning cost across all pools:
// replica-seconds scaled by each replica's flavor cost weight (1.0 = one
// A100-80G replica-second) — the axis the cost-aware planner minimizes.
func (c *Cluster) CostSeconds() float64 {
	sum := 0.0
	for _, p := range c.pools {
		sum += p.CostSeconds()
	}
	return sum
}

// Duration returns the simulated span of the served stream (after Serve).
func (c *Cluster) Duration() float64 { return c.endAt - c.startAt }

// transferEstimate returns the prefill planner's expected transfer delay as
// a function of the mean input length — the TTFT budget the link consumes —
// for a flavor whose model stores bytesPerToken of KV per token. Monolithic
// clusters and nil links estimate zero.
func (c *Cluster) transferEstimate(bytesPerToken int64) func(isl float64) float64 {
	if c.link == nil || !c.Disaggregated() {
		return nil
	}
	link := c.link
	return func(isl float64) float64 {
		// The migrating footprint is the prompt plus the prefill token.
		return link.TransferTime(int64(isl+1) * bytesPerToken)
	}
}

// pushEvent assigns the next sequence number and queues a simulation event.
func (c *Cluster) pushEvent(ev event) {
	c.evSeq++
	ev.seq = c.evSeq
	c.events.push(ev)
}

// Serve routes the requests (sorted by arrival time internally), advancing
// replica engines in global timestamp order through the event heap so each
// routing decision observes every replica's state as of the request's
// arrival, then drains the cluster until deadline. It returns each
// replica's result, pool-major. One-shot: a cluster serves one stream.
func (c *Cluster) Serve(reqs []*request.Request, deadline float64) []*engine.Result {
	sorted := append([]*request.Request(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ArrivalTime < sorted[j].ArrivalTime })
	i := 0
	return c.ServeStream(func() *request.Request {
		if i >= len(sorted) {
			return nil
		}
		r := sorted[i]
		i++
		return r
	}, deadline)
}

// ServeStream is Serve over a pull-based arrival source: next returns the
// requests in nondecreasing ArrivalTime order and nil at end of stream, so
// a million-request replay never materializes its slice. On a sorted slice
// it is decision-identical to Serve (which now wraps it). With Workers > 0
// arrivals route through the event heap (serveEvented); the reference path
// is the same per-arrival loop Serve has always run.
func (c *Cluster) ServeStream(next func() *request.Request, deadline float64) []*engine.Result {
	if c.workers > 0 {
		return c.serveEvented(next, deadline)
	}
	req := next()
	startAt := 0.0
	if req != nil {
		startAt = req.ArrivalTime
	}
	c.start(startAt) // always: pre-loaded engines drain even with no stream
	for ; req != nil; req = next() {
		if req.ArrivalTime > deadline {
			break
		}
		t := req.ArrivalTime
		c.advanceTo(t)
		c.handleArrival(t, req)
	}
	c.advanceTo(deadline) // drain: steps, activations, deliveries, ticks
	c.finish(deadline)
	return c.results()
}

// arrivalBlock bounds how many pending arrivals the evented path keeps in
// the heap at once, so streaming a 10M-request day holds O(block) arrival
// state instead of O(N).
const arrivalBlock = 4096

// serveEvented is the Workers > 0 serve loop: arrivals become evArrive heap
// events (in blocks, pulled lazily from the stream), so each advanceTo spans
// thousands of events and the batched core can form wide step batches. The
// heap's (time, kind, seq) order reproduces the reference loop exactly:
// evArrive sorts after same-instant activations and before every other
// same-instant kind — precisely where the sequential loop processes an
// arrival — and stale step events pushed by routing sort before later
// arrivals just as the reference's next advanceTo would pop them.
func (c *Cluster) serveEvented(next func() *request.Request, deadline float64) []*engine.Result {
	if c.workers > 1 && c.runner == nil {
		c.runner = newStepRunner(c.workers)
		defer func() {
			c.runner.stop()
			c.runner = nil
		}()
	}
	req := next()
	startAt := 0.0
	if req != nil {
		startAt = req.ArrivalTime
	}
	c.start(startAt)
	for req != nil && req.ArrivalTime <= deadline {
		for n := 0; n < arrivalBlock && req != nil && req.ArrivalTime <= deadline; n++ {
			c.pushEvent(event{at: req.ArrivalTime, kind: evArrive, req: req})
			req = next()
		}
		if req != nil && req.ArrivalTime <= deadline {
			c.advanceTo(req.ArrivalTime)
		}
	}
	c.advanceTo(deadline)
	c.finish(deadline)
	return c.results()
}

// handleArrival runs the per-arrival pipeline at time t: planner load
// observation, tick arming, reactive scaling, then admission or immediate
// routing. Shared verbatim by the sequential loop and the evArrive handler
// so both cores make identical decisions.
func (c *Cluster) handleArrival(t float64, req *request.Request) {
	entry := c.pools[c.entry]
	if entry.plan != nil {
		entry.plan.observeArrival(req.InputLen)
	}
	for _, p := range c.pools {
		p.ensureTick(t)
	}
	if entry.cfg.Scale != nil {
		entry.reactiveScale(t)
	}
	if c.adm != nil {
		if c.rec != nil {
			c.rec.Arrive(t, req)
		}
		c.adm.arrive(t, req)
		return
	}
	c.refreshProbes(entry, req)
	rep := entry.route(req)
	rep.eng.Submit(req)
	if c.rec != nil {
		// After Submit: the engine clamps a stale ArrivalTime up to its
		// own clock, and the span's clock must match the request's.
		c.rec.Arrive(req.ArrivalTime, req)
		c.rec.Place(req.ArrivalTime, req, entry.id, rep.idx, rep.flv.name)
	}
	rep.estValid = false
	c.ensureStepEvent(entry, rep)
}

// results snapshots every replica, pool-major.
func (c *Cluster) results() []*engine.Result {
	var results []*engine.Result
	for _, p := range c.pools {
		for _, rep := range p.reps {
			results = append(results, rep.eng.Snapshot())
		}
	}
	return results
}

// EventsProcessed returns how many simulation events the cluster has
// handled — heap pops plus evented arrivals — the throughput numerator the
// scale benchmark reports as events/sec.
func (c *Cluster) EventsProcessed() int64 { return c.popped }

// BatchStats reports the parallel core's batch formation quality: how many
// step batches ran and the mean steps per batch (0, 0 on the reference
// core). Mean width bounds the achievable speedup — a width of w can use at
// most w workers.
func (c *Cluster) BatchStats() (batches int64, meanWidth float64) {
	if c.batches == 0 {
		return 0, 0
	}
	return c.batches, float64(c.batchedSteps) / float64(c.batches)
}

// start arms the event loop: replica-seconds clocks for the initially
// active replicas and step events for engines pre-loaded before Serve.
func (c *Cluster) start(t float64) {
	if c.started {
		return
	}
	c.started = true
	c.startAt = t
	for _, p := range c.pools {
		for _, rep := range p.reps {
			if rep.active {
				rep.activeAt = t
			}
			c.ensureStepEvent(p, rep)
		}
	}
	c.armFaultEvents()
}

// finish closes replica-seconds accounting at the cluster's end time and
// terminates whatever admission still holds (the stream is over; an
// unserved hold is a refusal).
func (c *Cluster) finish(deadline float64) {
	c.endAt = c.startAt
	for _, p := range c.pools {
		for _, rep := range p.reps {
			if clk := rep.eng.Clock(); clk > c.endAt {
				c.endAt = clk
			}
		}
	}
	if c.endAt > deadline {
		c.endAt = deadline
	}
	if c.adm != nil {
		c.adm.flush(c.endAt)
	}
	for _, p := range c.pools {
		for _, rep := range p.reps {
			// A replica still under repair at the end accrues nothing: its
			// span was closed at the crash.
			if rep.active && !rep.down {
				span := c.endAt - rep.activeAt
				if span > 0 {
					rep.activeSecs += span
				}
			}
		}
	}
}

// advanceTo pops and handles every event due strictly before t, plus
// activations and evented arrivals at exactly t (a replica whose delay
// elapses at t must be eligible for an arrival at t, matching the scan
// router's t ≥ wakeAt; an evArrive at t is the arrival the sequential loop
// would process after its own advanceTo(t) — the reference never pushes
// evArrive, so admitting the kind here changes nothing for it).
func (c *Cluster) advanceTo(t float64) {
	if c.workers > 0 {
		c.advanceBatched(t)
		return
	}
	for c.events.Len() > 0 {
		top := c.events.top()
		if top.at > t || (top.at == t && top.kind != evActivate) {
			return
		}
		c.popped++
		c.handle(c.events.pop())
	}
}

func (c *Cluster) handle(ev event) {
	p := c.pools[ev.pool]
	switch ev.kind {
	case evStep:
		rep := p.reps[ev.rep]
		rep.inHeap = false
		if rep.down {
			return // stale step on a crashed replica; recovery re-arms
		}
		rep.eng.Step()
		// Invalidate unconditionally: a Step returning false can still have
		// mutated state (queue-timeout drops run before the drained check).
		rep.estValid = false
		if rep.draining && p.drained(rep) {
			p.retire(rep, rep.eng.Clock())
		}
		c.ensureStepEvent(p, rep)
		// A step that released a request (finish, handoff, timeout, fail)
		// is a capacity event: a held arrival that probed over the gate may
		// fit now. This replaces per-tick polling of the admission queue.
		// The retry is deferred to an event at the step's end clock — steps
		// pop in start-time order, so retrying inline here could shed a
		// head at a timestamp later than events still in the heap.
		if c.adm != nil && rep.eng.ReleasedLastStep() {
			c.scheduleRetry(rep.eng.Clock())
		}
	case evArrive:
		c.handleArrival(ev.at, ev.req)
	case evActivate:
		rep := p.reps[ev.rep]
		// Stale activations (the replica was scaled back in, re-armed with a
		// different wake time, or crashed while activating) are ignored.
		if rep.active && !rep.awake && !rep.down && rep.wakeAt == ev.at {
			rep.awake = true
			p.rebuildAccepting()
			if c.adm != nil {
				c.adm.retry(ev.at) // fresh capacity: release held arrivals
			}
		}
	case evXfer:
		c.issueHandoff(ev)
	case evRetry:
		c.adm.retryPending = false
		c.adm.retry(ev.at)
	case evDeliver:
		c.deliver(ev)
	case evPlan:
		p.planScheduled = false
		if p.plan != nil {
			targets := p.plan.tick(ev.at, p.activeByFlavor())
			p.applyTargets(ev.at, targets)
			p.plan.History[len(p.plan.History)-1].Active = p.ActiveReplicas()
			if c.rec != nil {
				total := 0
				for _, t := range targets {
					total += t
				}
				c.rec.PlanPoint(ev.at, p.id, total, p.ActiveReplicas())
			}
		} else if p.cfg.Scale != nil {
			p.reactiveScale(ev.at)
		}
		if c.adm != nil {
			c.adm.retry(ev.at) // an un-drained replica is immediate capacity
		}
		if c.anyBusy() {
			p.scheduleTick(ev.at + p.tickInterval())
		}
	case evCrash:
		c.crashReplica(ev)
	case evRecover:
		c.recoverReplica(ev)
	case evSlow:
		c.slowReplica(ev)
	case evSlowEnd:
		c.slowEnd(ev)
	case evXferRetry:
		c.retryHandoff(ev)
	}
}

// onHandoff fires inside a prefill engine's Step. The booking is deferred
// to an evXfer event at the issue time rather than done here: engine steps
// execute in start-time order while their effects land at their end times,
// so booking eagerly would write the link in engine-step order — an
// earlier-issued handoff could queue behind a later one. The event heap
// replays the handoffs in issue-time order (ties broken by request arrival,
// then ID).
func (c *Cluster) onHandoff(fromRep int, now float64, r *request.Request) {
	c.pushEvent(event{at: now, kind: evXfer, pool: c.decode, rep: fromRep, req: r})
}

// issueHandoff books one handoff at the prefill→transfer boundary: the
// decode replica is picked on a (fits, expected delivery, headroom) cost
// vector, and — under admission shedding — a request whose TTFT budget the
// expected delivery already overruns is shed *before* any link bandwidth
// is committed to it.
func (c *Cluster) issueHandoff(ev event) {
	r := ev.req
	dp := c.pools[c.decode]
	// The transfer moves the KV cache the source replica materialized, so
	// its size comes from that replica's own model — per-flavor in a
	// heterogeneous prefill pool, identical to the old fleet-wide constant
	// in a homogeneous one.
	bytes := int64(r.Footprint()) * c.pools[c.entry].reps[ev.rep].eng.KVBytesPerToken()
	rep, deliverAt := c.pickDecode(ev.at, r, bytes, dp)
	if c.flt != nil && rep.down {
		// Every decode replica is down (the pick fell through to the crashed
		// fallback). The wire never carries a transfer to a crashed
		// destination: without recovery the request is lost here; with it,
		// the booking defers to the destination's repair, where the retry
		// re-picks and prices normally.
		if !c.flt.cfg.Recover {
			r.MarkFailed()
			c.flt.lost = append(c.flt.lost, r)
			if c.rec != nil {
				c.rec.Fail(ev.at, r, c.decode, rep.idx)
			}
			return
		}
		c.handoffs = append(c.handoffs, Handoff{
			Req: r, FromReplica: ev.rep, ToReplica: -1,
			PrefillDoneAt: ev.at, DeliveredAt: -1,
			bytes: bytes,
		})
		if c.rec != nil {
			c.rec.XferFail(ev.at, r, rep.repairAt)
		}
		c.pushEvent(event{at: rep.repairAt, kind: evXferRetry, pool: c.decode, rep: len(c.handoffs) - 1, req: r})
		return
	}
	if c.adm != nil && c.adm.cfg.Shed && r.TTFTDeadline > 0 && deliverAt > r.TTFTDeadline {
		c.adm.shed(ev.at, r, shedBoundary)
		return
	}
	if c.link != nil {
		deliverAt = c.link.ScheduleTo(ev.at, bytes, rep.idx)
	}
	if c.rec != nil {
		start, done := ev.at, deliverAt
		if c.lastBook.ok {
			start, done = c.lastBook.start, c.lastBook.done
			c.lastBook.ok = false
		}
		c.rec.XferBook(ev.at, r, c.entry, ev.rep, c.decode, rep.idx, bytes, start, done)
	}
	dp.routeTo(r, rep)
	rep.pendingIn++
	c.handoffs = append(c.handoffs, Handoff{
		Req: r, FromReplica: ev.rep, ToReplica: rep.idx,
		PrefillDoneAt: ev.at, DeliveredAt: deliverAt,
		bytes: bytes,
	})
	c.pushEvent(event{at: deliverAt, kind: evDeliver, pool: c.decode, rep: len(c.handoffs) - 1, req: r})
}

// pickDecode is the contention-aware second routing stage: each accepting
// decode replica is priced as a cost vector — does the probed future peak
// fit its capacity, when would the KV transfer land on its ingress lane
// (kv.Link.ExpectedDeliveryTo, wire queueing included), and how much
// speed-normalized headroom remains (the raw fraction scaled by the
// replica's flavor speed, so a 4090's and an A100's probes compare) —
// ranked lexicographically (fits, delivery, headroom). On a single shared
// wire every delivery estimate coincides and the pick degrades to
// FutureHeadroom; with per-destination lanes a backed-up ingress diverts
// bursts to replicas that can actually receive them. Fitting stays a raw
// memory test: speed does not make an overflowing batch fit.
func (c *Cluster) pickDecode(now float64, r *request.Request, bytes int64, dp *Pool) (*replica, float64) {
	cands := dp.accepting
	if len(cands) == 0 {
		rep := dp.fallbackReplica()
		return rep, c.expectedDelivery(now, bytes, rep.idx)
	}
	var best *replica
	bestFits, bestDeliver, bestScore := false, math.Inf(1), math.Inf(1)
	for _, rep := range cands {
		frac := dp.probe(rep, r)
		score := frac / rep.flv.relSpeed
		deliver := c.expectedDelivery(now, bytes, rep.idx)
		fits := frac <= 1
		better := false
		switch {
		case best == nil:
			better = true
		case fits != bestFits:
			better = fits
		case deliver != bestDeliver:
			better = deliver < bestDeliver
		default:
			// Equal fit and delivery: the shared (fits, score) ranking.
			better = betterFit(fits, score, bestFits, bestScore)
		}
		if better {
			best, bestFits, bestDeliver, bestScore = rep, fits, deliver, score
		}
	}
	return best, bestDeliver
}

// scheduleRetry queues an admission re-examination at time `at`, coalescing
// with an already-pending retry at an earlier-or-equal time: engine state is
// mutated eagerly, so the earlier retry will already see this capacity (it
// only evaluates feasibility at its own, earlier timestamp — a head it
// cannot yet shed simply waits for the next capacity event).
func (c *Cluster) scheduleRetry(at float64) {
	if c.adm.retryPending && c.adm.retryAt <= at {
		return
	}
	c.adm.retryPending = true
	c.adm.retryAt = at
	c.pushEvent(event{at: at, kind: evRetry})
}

// expectedDelivery prices one un-booked transfer to a decode replica.
func (c *Cluster) expectedDelivery(now float64, bytes int64, dst int) float64 {
	if c.link == nil {
		return now
	}
	return c.link.ExpectedDeliveryTo(now, bytes, dst)
}

// deliver lands one KV migration on the replica picked at issue time: the
// request's SLA clock shifts to the delivery (its first token is visible
// only now — TTFT includes the transfer) and the decode pool's planner
// observes the arrival. If the booked destination left the accepting set
// while the transfer was on the wire (planner drain/retire), the migration
// is re-routed on landing.
func (c *Cluster) deliver(ev event) {
	r := ev.req
	if c.flt != nil {
		if c.flt.failsDelivery(ev.at) {
			c.failDelivery(ev) // the transfer died on the wire
			return
		}
		if c.pools[c.decode].reps[c.handoffs[ev.rep].ToReplica].down {
			// The destination crashed while the transfer was in flight: the
			// KV landed nowhere. A failed delivery, not a free re-route.
			c.failDelivery(ev)
			return
		}
	}
	r.RecordMigration(ev.at)
	dp := c.pools[c.decode]
	if dp.plan != nil {
		dp.plan.observeArrival(r.Footprint())
	}
	// The prefill pool's planner observes the end-to-end first-token
	// latency (queue + prefill + transfer) its sizing must keep under the
	// TTFT target; handoffs are its "finishes".
	if pp := c.pools[c.entry]; pp.plan != nil && c.Disaggregated() {
		pp.plan.observeFinish(1, ev.at-r.ArrivalTime, 0)
	}
	for _, p := range c.pools {
		p.ensureTick(ev.at)
	}
	if dp.cfg.Scale != nil {
		dp.reactiveScale(ev.at)
	}
	h := &c.handoffs[ev.rep]
	rep := dp.reps[h.ToReplica]
	rep.pendingIn--
	if !rep.active || !rep.awake || rep.draining {
		old := rep
		rep = dp.pick(r)
		old.routed--
		dp.routeTo(r, rep) // a fresh routing decision: count it and tell observers
		h.ToReplica = rep.idx
		if old.draining && dp.drained(old) {
			dp.retire(old, ev.at)
		}
	}
	if c.rec != nil {
		c.rec.XferDeliver(ev.at, r, c.decode, rep.idx)
	}
	rep.eng.SubmitMigrated(r, ev.at)
	rep.estValid = false
	c.ensureStepEvent(dp, rep)
	if c.cfg.OnHandoff != nil {
		c.cfg.OnHandoff(*h)
	}
	if c.adm != nil {
		c.adm.retry(ev.at) // the prefill side freed this footprint at handoff
	}
}

// ensureStepEvent inserts a step event for a busy replica that has none. A
// crashed replica steps nothing until repaired — recovery re-arms it.
func (c *Cluster) ensureStepEvent(p *Pool, rep *replica) {
	if rep.down || rep.inHeap || rep.eng.Idle() {
		return
	}
	rep.inHeap = true
	c.pushEvent(event{at: rep.eng.Clock(), kind: evStep, pool: p.id, rep: rep.idx})
}

func (c *Cluster) anyBusy() bool {
	for _, p := range c.pools {
		for _, rep := range p.reps {
			if !rep.eng.Idle() {
				return true
			}
		}
	}
	return false
}
