// Package cluster is the fleet layer between the serving engine and the
// world: an event-driven multi-replica simulator with predictive,
// SLA-driven autoscaling — the paper's §7 future-work proposal (routing by
// predicted future memory demand) grown into a real subsystem.
//
// The layer is built from role-aware pools. A Pool owns replicas that all
// execute one serving phase (engine.RoleMixed, RolePrefillOnly,
// RoleDecodeOnly) behind a routing policy and an optional autoscaler; a
// Cluster composes pools behind a single event min-heap (replica engine
// steps, replica activations, autoscaler ticks, KV-handoff deliveries) so
// every pool shares one simulated clock. Two topologies are supported:
//
//   - Monolithic: one RoleMixed pool. This is the PR 2 fleet, unchanged —
//     Fleet is now a thin wrapper over this degenerate cluster.
//   - Disaggregated (Dynamo/DistServe/Splitwise-style): a prefill pool and
//     a decode pool behind a two-stage router. Arrivals take a
//     FutureHeadroom (or RR/least-loaded) pick in the prefill pool; a
//     prefill-only engine completes the request at its first token and
//     hands it off; the KV cache crosses a kv.Link (bandwidth + latency +
//     optional serialization, so the handoff is simulated, not free); on
//     delivery the request takes a second FutureHeadroom pick in the
//     decode pool and is admitted through engine.SubmitMigrated with its
//     KV footprint pre-seeded.
//
// Routing probes go through one warm core.PeakEstimator per replica: the
// estimator is rebuilt only when its replica's state changed, and each
// probe is an O(log B) PeakWith — no per-probe clone+sort, no per-probe
// allocations. Autoscaling is per pool: the threshold-reactive
// high/low-water policy, or the predictive SLA planner (PlannerConfig)
// that forecasts load and scales straight to the replica count whose
// interpolated latency meets the targets — TTFT sizes a prefill pool,
// TPOT sizes a decode pool, both size a mixed pool.
package cluster

import (
	"fmt"
	"sort"

	"github.com/lightllm-go/lightllm/internal/engine"
	"github.com/lightllm-go/lightllm/internal/kv"
	"github.com/lightllm-go/lightllm/internal/request"
)

// Handoff records one prefill→decode KV migration, complete after its
// delivery event fired.
type Handoff struct {
	// Req is the migrating request.
	Req *request.Request
	// FromReplica / ToReplica are pool-local replica indexes (prefill pool
	// source, decode pool destination; To is -1 until delivered).
	FromReplica, ToReplica int
	// PrefillDoneAt is when the prefill engine emitted the handoff;
	// DeliveredAt is when the transfer landed on the decode side. The
	// difference is the simulated transfer delay (queueing included).
	PrefillDoneAt, DeliveredAt float64
}

// ClusterConfig configures a Cluster.
type ClusterConfig struct {
	// Pools composes the cluster. Exactly one RoleMixed pool (monolithic),
	// or exactly two pools — RolePrefillOnly then RoleDecodeOnly
	// (disaggregated).
	Pools []Config
	// Link models the prefill→decode KV transfer path. nil makes handoffs
	// instantaneous (a modeling upper bound). Ignored for monolithic
	// clusters.
	Link *kv.Link
	// OnHandoff, when non-nil, observes every completed KV migration at its
	// delivery time.
	OnHandoff func(h Handoff)
}

// Cluster composes role-aware pools behind one event min-heap — the single
// clock every pool shares — and the two-stage disaggregated router.
type Cluster struct {
	cfg   ClusterConfig
	pools []*Pool

	events eventHeap
	evSeq  int64

	entry  int // pool receiving external arrivals
	decode int // pool receiving KV deliveries (== entry when monolithic)

	link            *kv.Link
	kvBytesPerToken int64
	handoffs        []Handoff

	started bool
	startAt float64
	endAt   float64
}

// NewCluster validates the configuration and builds a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	c := &Cluster{cfg: cfg, link: cfg.Link, decode: -1}
	switch len(cfg.Pools) {
	case 1:
		if cfg.Pools[0].Role != engine.RoleMixed {
			return nil, fmt.Errorf("cluster: a single pool must be %v, got %v",
				engine.RoleMixed, cfg.Pools[0].Role)
		}
		c.entry, c.decode = 0, 0
	case 2:
		if cfg.Pools[0].Role != engine.RolePrefillOnly || cfg.Pools[1].Role != engine.RoleDecodeOnly {
			return nil, fmt.Errorf("cluster: two pools must be (%v, %v), got (%v, %v)",
				engine.RolePrefillOnly, engine.RoleDecodeOnly, cfg.Pools[0].Role, cfg.Pools[1].Role)
		}
		c.entry, c.decode = 0, 1
	default:
		return nil, fmt.Errorf("cluster: %d pools; want one mixed or prefill+decode", len(cfg.Pools))
	}
	for i, pc := range cfg.Pools {
		p, err := newPool(c, i, pc)
		if err != nil {
			return nil, err
		}
		c.pools = append(c.pools, p)
	}
	if c.Disaggregated() {
		spec := c.pools[c.decode].reps[0].eng.Perf().Spec()
		c.kvBytesPerToken = spec.KVBytesPerToken()
		for _, rep := range c.pools[c.entry].reps {
			rep := rep
			rep.eng.AddHandoffHook(func(now float64, r *request.Request) {
				c.onHandoff(rep.idx, now, r)
			})
		}
	}
	return c, nil
}

// MustNewCluster is NewCluster for statically valid configurations.
func MustNewCluster(cfg ClusterConfig) *Cluster {
	c, err := NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Disaggregated reports whether the cluster splits prefill and decode.
func (c *Cluster) Disaggregated() bool { return c.decode != c.entry }

// NumPools returns the number of pools.
func (c *Cluster) NumPools() int { return len(c.pools) }

// Pool returns the i-th pool (0 = entry/prefill, 1 = decode when
// disaggregated).
func (c *Cluster) Pool(i int) *Pool { return c.pools[i] }

// Handoffs returns every recorded KV migration (complete after Serve).
func (c *Cluster) Handoffs() []Handoff { return c.handoffs }

// ReplicaSeconds returns the provisioned-time integral across all pools.
func (c *Cluster) ReplicaSeconds() float64 {
	sum := 0.0
	for _, p := range c.pools {
		sum += p.ReplicaSeconds()
	}
	return sum
}

// Duration returns the simulated span of the served stream (after Serve).
func (c *Cluster) Duration() float64 { return c.endAt - c.startAt }

// transferEstimate returns the prefill planner's expected transfer delay as
// a function of the mean input length — the TTFT budget the link consumes.
// Monolithic clusters and nil links estimate zero.
func (c *Cluster) transferEstimate(e *engine.Engine) func(isl float64) float64 {
	if c.link == nil || !c.Disaggregated() {
		return nil
	}
	bytesPerToken := e.Perf().Spec().KVBytesPerToken()
	link := c.link
	return func(isl float64) float64 {
		// The migrating footprint is the prompt plus the prefill token.
		return link.TransferTime(int64(isl+1) * bytesPerToken)
	}
}

// pushEvent assigns the next sequence number and queues a simulation event.
func (c *Cluster) pushEvent(ev event) {
	c.evSeq++
	ev.seq = c.evSeq
	c.events.push(ev)
}

// Serve routes the requests (sorted by arrival time internally), advancing
// replica engines in global timestamp order through the event heap so each
// routing decision observes every replica's state as of the request's
// arrival, then drains the cluster until deadline. It returns each
// replica's result, pool-major. One-shot: a cluster serves one stream.
func (c *Cluster) Serve(reqs []*request.Request, deadline float64) []*engine.Result {
	sorted := append([]*request.Request(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ArrivalTime < sorted[j].ArrivalTime })

	startAt := 0.0
	if len(sorted) > 0 {
		startAt = sorted[0].ArrivalTime
	}
	c.start(startAt) // always: pre-loaded engines drain even with no stream
	entry := c.pools[c.entry]
	for _, req := range sorted {
		if req.ArrivalTime > deadline {
			break
		}
		t := req.ArrivalTime
		c.advanceTo(t)
		if entry.plan != nil {
			entry.plan.observeArrival(req.InputLen)
		}
		for _, p := range c.pools {
			p.ensureTick(t)
		}
		if entry.cfg.Scale != nil {
			entry.reactiveScale(t)
		}
		rep := entry.route(req)
		rep.eng.Submit(req)
		rep.estValid = false
		c.ensureStepEvent(entry, rep)
	}
	c.advanceTo(deadline) // drain: steps, activations, deliveries, ticks
	c.finish(deadline)

	var results []*engine.Result
	for _, p := range c.pools {
		for _, rep := range p.reps {
			results = append(results, rep.eng.Snapshot())
		}
	}
	return results
}

// start arms the event loop: replica-seconds clocks for the initially
// active replicas and step events for engines pre-loaded before Serve.
func (c *Cluster) start(t float64) {
	if c.started {
		return
	}
	c.started = true
	c.startAt = t
	for _, p := range c.pools {
		for _, rep := range p.reps {
			if rep.active {
				rep.activeAt = t
			}
			c.ensureStepEvent(p, rep)
		}
	}
}

// finish closes replica-seconds accounting at the cluster's end time.
func (c *Cluster) finish(deadline float64) {
	c.endAt = c.startAt
	for _, p := range c.pools {
		for _, rep := range p.reps {
			if clk := rep.eng.Clock(); clk > c.endAt {
				c.endAt = clk
			}
		}
	}
	if c.endAt > deadline {
		c.endAt = deadline
	}
	for _, p := range c.pools {
		for _, rep := range p.reps {
			if rep.active {
				span := c.endAt - rep.activeAt
				if span > 0 {
					rep.activeSecs += span
				}
			}
		}
	}
}

// advanceTo pops and handles every event due strictly before t, plus
// activations at exactly t (a replica whose delay elapses at t must be
// eligible for an arrival at t, matching the scan router's t ≥ wakeAt).
func (c *Cluster) advanceTo(t float64) {
	for c.events.Len() > 0 {
		top := c.events.top()
		if top.at > t || (top.at == t && top.kind != evActivate) {
			return
		}
		c.handle(c.events.pop())
	}
}

func (c *Cluster) handle(ev event) {
	p := c.pools[ev.pool]
	switch ev.kind {
	case evStep:
		rep := p.reps[ev.rep]
		rep.inHeap = false
		rep.eng.Step()
		// Invalidate unconditionally: a Step returning false can still have
		// mutated state (queue-timeout drops run before the drained check).
		rep.estValid = false
		if rep.draining && rep.eng.Idle() {
			p.retire(rep, rep.eng.Clock())
		}
		c.ensureStepEvent(p, rep)
	case evActivate:
		rep := p.reps[ev.rep]
		// Stale activations (the replica was scaled back in, or re-armed
		// with a different wake time) are ignored.
		if rep.active && !rep.awake && rep.wakeAt == ev.at {
			rep.awake = true
			p.rebuildAccepting()
		}
	case evDeliver:
		c.deliver(ev)
	case evPlan:
		p.planScheduled = false
		if p.plan != nil {
			target := p.plan.tick(ev.at, p.ActiveReplicas())
			p.applyTarget(ev.at, target)
			p.plan.History[len(p.plan.History)-1].Active = p.ActiveReplicas()
		} else if p.cfg.Scale != nil {
			p.reactiveScale(ev.at)
		}
		if c.anyBusy() {
			p.scheduleTick(ev.at + p.tickInterval())
		}
	}
}

// onHandoff fires inside a prefill engine's Step: the KV transfer is booked
// on the link and a delivery event is queued for the decode pool. The event
// carries the handoff record's index so delivery can complete it.
func (c *Cluster) onHandoff(fromRep int, now float64, r *request.Request) {
	deliverAt := now
	if c.link != nil {
		deliverAt = c.link.Schedule(now, int64(r.Footprint())*c.kvBytesPerToken)
	}
	c.handoffs = append(c.handoffs, Handoff{
		Req: r, FromReplica: fromRep, ToReplica: -1,
		PrefillDoneAt: now, DeliveredAt: deliverAt,
	})
	c.pushEvent(event{at: deliverAt, kind: evDeliver, pool: c.decode, rep: len(c.handoffs) - 1, req: r})
}

// deliver lands one KV migration: the request's SLA clock shifts to the
// delivery (its first token is visible only now — TTFT includes the
// transfer), the decode pool's planner observes the arrival, and the
// second routing stage picks the decode replica.
func (c *Cluster) deliver(ev event) {
	r := ev.req
	r.RecordMigration(ev.at)
	dp := c.pools[c.decode]
	if dp.plan != nil {
		dp.plan.observeArrival(r.Footprint())
	}
	// The prefill pool's planner observes the end-to-end first-token
	// latency (queue + prefill + transfer) its sizing must keep under the
	// TTFT target; handoffs are its "finishes".
	if pp := c.pools[c.entry]; pp.plan != nil && c.Disaggregated() {
		pp.plan.observeFinish(1, ev.at-r.ArrivalTime, 0)
	}
	for _, p := range c.pools {
		p.ensureTick(ev.at)
	}
	if dp.cfg.Scale != nil {
		dp.reactiveScale(ev.at)
	}
	rep := dp.route(r)
	rep.eng.SubmitMigrated(r, ev.at)
	rep.estValid = false
	c.ensureStepEvent(dp, rep)
	c.handoffs[ev.rep].ToReplica = rep.idx
	if c.cfg.OnHandoff != nil {
		c.cfg.OnHandoff(c.handoffs[ev.rep])
	}
}

// ensureStepEvent inserts a step event for a busy replica that has none.
func (c *Cluster) ensureStepEvent(p *Pool, rep *replica) {
	if rep.inHeap || rep.eng.Idle() {
		return
	}
	rep.inHeap = true
	c.pushEvent(event{at: rep.eng.Clock(), kind: evStep, pool: p.id, rep: rep.idx})
}

func (c *Cluster) anyBusy() bool {
	for _, p := range c.pools {
		for _, rep := range p.reps {
			if !rep.eng.Idle() {
				return true
			}
		}
	}
	return false
}
