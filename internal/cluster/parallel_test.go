package cluster

import (
	"fmt"
	"strings"
	"testing"

	"github.com/lightllm-go/lightllm/internal/core"
	"github.com/lightllm-go/lightllm/internal/engine"
	"github.com/lightllm-go/lightllm/internal/faults"
	"github.com/lightllm-go/lightllm/internal/hw"
	"github.com/lightllm-go/lightllm/internal/metrics"
	"github.com/lightllm-go/lightllm/internal/obs"
	"github.com/lightllm-go/lightllm/internal/request"
	"github.com/lightllm-go/lightllm/internal/rng"
)

// parallelWorkerCounts are the cores every equivalence test sweeps against
// the workers=0 reference: the inline batched baseline and a concurrent
// pool (more workers than the scenarios have busy replicas, so the sweep
// also covers idle-worker schedules).
var parallelWorkerCounts = []int{1, 4}

// compareTraces fails the test on the first field where two decision
// traces diverge.
func compareTraces(t *testing.T, label string, got, want decisionTrace) {
	t.Helper()
	compare := func(kind string, g, w []string) {
		t.Helper()
		if len(g) != len(w) {
			t.Fatalf("%s: %s counts differ: got %d, reference %d", label, kind, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: %s %d differs:\ngot:       %s\nreference: %s", label, kind, i, g[i], w[i])
			}
		}
	}
	compare("route", got.routes, want.routes)
	compare("plan", got.plans, want.plans)
	compare("shed", got.sheds, want.sheds)
	compare("handoff", got.handoffs, want.handoffs)
	if got.report != want.report {
		t.Fatalf("%s: reports differ:\ngot:       %s\nreference: %s", label, got.report, want.report)
	}
}

// TestParallelMatchesReference is the tentpole's bit-identity claim on the
// full disaggregated pipeline: admission holds and sheds, per-pool SLA
// planners, KV handoffs over a real link. Every Workers value must route,
// plan, shed, book, and report identically to the single-threaded
// reference, across seeds. Run under -race this also proves the batched
// core shares no unsynchronized state.
func TestParallelMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := runSeamScenario(seed, false, nil)
			if len(ref.sheds) == 0 {
				t.Fatal("scenario shed nothing; no admission pressure exercised")
			}
			for _, w := range parallelWorkerCounts {
				got := runSeamScenarioWorkers(seed, false, nil, w)
				compareTraces(t, fmt.Sprintf("workers=%d", w), got, ref)
			}
		})
	}
}

// TestParallelFaultStormMatchesReference: bit-identity under fire. The
// conservation storm schedule (crashes mid-prefill/mid-decode/mid-hold,
// wire failures, a slowdown, plus a seeded stochastic storm) interleaves
// every fault event kind with batched steps.
func TestParallelFaultStormMatchesReference(t *testing.T) {
	storm := func(seed uint64) *FaultConfig {
		return &FaultConfig{
			Schedule: stormSchedule(seed), Recover: true,
			MaxTransferRetries: 3, RetryBackoff: 0.05,
			LinkFailRate: 0.05, Seed: seed,
		}
	}
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := runSeamScenario(seed, false, storm(seed))
			for _, w := range parallelWorkerCounts {
				got := runSeamScenarioWorkers(seed, false, storm(seed), w)
				compareTraces(t, fmt.Sprintf("workers=%d", w), got, ref)
			}
		})
	}
}

// heteroOverloadTrace drives a monolithic heterogeneous fleet (A100 +
// A30 flavors) through an overload burst with admission shedding and the
// SLA planner, on a chosen core — covering the hetero and overload modes
// the disaggregated seam scenario does not.
func heteroOverloadTrace(seed uint64, workers int) decisionTrace {
	var tr decisionTrace
	f := MustNew(Config{
		Replicas: mixedReplicas(perfFor(hw.A100_80G), 2, perfFor(hw.A30), 2, 6_000, seed),
		Policy:   FutureHeadroom,
		Planner: &PlannerConfig{
			SLA: metrics.SLA{TTFT: 4, MTPOT: 1.0}, Min: 1, Max: 4,
			Interval: 5, Predictor: HoltPredictor, ActivationDelay: 1,
		},
		Admission: &AdmissionConfig{TTFTBudget: 4, Shed: true, Slack: 0.5},
		OnRoute: func(r *request.Request, rep int) {
			tr.routes = append(tr.routes, fmt.Sprintf("r%d req%d", rep, r.ID))
		},
		Workers: workers,
	})
	results := f.Serve(poissonReqs(400, 120, seed), 1e9) // ~2x sustainable: overload
	for _, s := range f.ShedRequests() {
		tr.sheds = append(tr.sheds, fmt.Sprintf("req%d@%.9f", s.ID, s.ShedAt))
	}
	for _, s := range f.PlanHistory() {
		tr.plans = append(tr.plans, fmt.Sprintf("@%.3f target=%d active=%d targets=%v", s.At, s.Target, s.Active, s.Targets))
	}
	tr.report = fmt.Sprintf("%+v", f.Report(results, metrics.SLA{TTFT: 4, MTPOT: 1.0}))
	return tr
}

// TestParallelHeteroOverloadMatchesReference: bit-identity on a
// heterogeneous monolithic fleet under overload — mixed flavors exercise
// speed-normalized routing and flavor-aware planning; the 2x-sustainable
// arrival rate keeps the admission queue and shed path hot.
func TestParallelHeteroOverloadMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := heteroOverloadTrace(seed, 0)
			if len(ref.sheds) == 0 {
				t.Fatal("overload scenario shed nothing")
			}
			for _, w := range parallelWorkerCounts {
				got := heteroOverloadTrace(seed, w)
				compareTraces(t, fmt.Sprintf("workers=%d", w), got, ref)
			}
		})
	}
}

// TestParallelRecorderParity: the full observability stream — spans,
// stage decompositions, wire spans, time series, the Perfetto export —
// must come out byte-identical from the batched core. The recorder is the
// most order-sensitive observer (every emission site, in firing order),
// so this is the sharpest single check of effect replay.
func TestParallelRecorderParity(t *testing.T) {
	dump := func(c *obs.Collector) string {
		var spans, pft strings.Builder
		if err := c.WriteSpanCSV(&spans); err != nil {
			t.Fatal(err)
		}
		if err := c.WritePerfetto(&pft); err != nil {
			t.Fatal(err)
		}
		return spans.String() + "\n====\n" + pft.String()
	}
	for seed := uint64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			refC := obs.NewCollector(1)
			runSeamScenario(seed, false, nil, refC)
			ref := dump(refC)
			for _, w := range parallelWorkerCounts {
				gotC := obs.NewCollector(1)
				runSeamScenarioWorkers(seed, false, nil, w, gotC)
				if got := dump(gotC); got != ref {
					t.Fatalf("workers=%d: recorder streams diverge", w)
				}
			}
		})
	}
}

// TestServeStreamMatchesServe: the pull-based arrival source — the
// streaming entry point long-trace replay uses — produces the same results
// as the materialized slice, on both cores.
func TestServeStreamMatchesServe(t *testing.T) {
	run := func(workers int, stream bool) string {
		f := MustNew(Config{Replicas: replicas(2, 8_000), Policy: FutureHeadroom, Workers: workers})
		reqs := poissonReqs(200, 60, 7)
		var results []*engine.Result
		if stream {
			i := 0
			results = f.ServeStream(func() *request.Request {
				if i >= len(reqs) {
					return nil
				}
				r := reqs[i]
				i++
				return r
			}, 1e9)
		} else {
			results = f.Serve(reqs, 1e9)
		}
		if f.EventsProcessed() == 0 {
			t.Fatal("no events counted")
		}
		return fmt.Sprintf("%+v", f.Report(results, metrics.SLA{TTFT: 6, MTPOT: 1.5}))
	}
	ref := run(0, false)
	for _, w := range []int{0, 1, 4} {
		if got := run(w, true); got != ref {
			t.Fatalf("workers=%d stream report diverges:\ngot: %s\nref: %s", w, got, ref)
		}
	}
}

// TestParallelValidation pins the batched core's construction-time safety
// checks: exclusive engine and scheduler ownership, cluster-wide worker
// count, non-negative workers.
func TestParallelValidation(t *testing.T) {
	if _, err := New(Config{Replicas: replicas(2, 8_000), Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := NewCluster(ClusterConfig{
		Pools: []Config{{Replicas: replicas(1, 8_000), Workers: 2}},
	}); err == nil {
		t.Fatal("pool-level Workers accepted inside ClusterConfig")
	}

	shared := replicas(1, 8_000)[0]
	if _, err := New(Config{Replicas: []*engine.Engine{shared, shared}, Workers: 2}); err == nil {
		t.Fatal("shared engine accepted with Workers > 0")
	}

	sched := core.MustNewPastFuture(core.PastFutureConfig{Reserved: 0.05, Rng: rng.New(1)})
	pm := testPerf()
	mk := func() *engine.Engine {
		return engine.MustNew(engine.Config{Perf: pm, Scheduler: sched, CapacityOverride: 8_000})
	}
	if _, err := New(Config{Replicas: []*engine.Engine{mk(), mk()}, Workers: 2}); err == nil {
		t.Fatal("shared scheduler accepted with Workers > 0")
	}
	if _, err := New(Config{Replicas: []*engine.Engine{mk(), mk()}}); err != nil {
		t.Fatalf("shared scheduler rejected on the reference core: %v", err)
	}
}

// TestParallelFaultStormChaos is the `make chaos` entry: the storm
// equivalence across the widened CHAOS_SEEDS sweep.
func TestParallelFaultStormChaos(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			flt := func() *FaultConfig {
				return &FaultConfig{
					Schedule: stormSchedule(seed), Recover: true,
					MaxTransferRetries: 3, RetryBackoff: 0.05,
					LinkFailRate: 0.08, Seed: seed ^ 0x9e37,
				}
			}
			ref := runSeamScenario(seed, false, flt())
			got := runSeamScenarioWorkers(seed, false, flt(), 4)
			compareTraces(t, "workers=4", got, ref)
		})
	}
}

var _ = faults.Crash // keep the import pinned to the storm schedule's package
