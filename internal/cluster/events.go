package cluster

import "github.com/lightllm-go/lightllm/internal/request"

// The cluster is driven by one typed min-heap of simulation events — a
// single clock shared by every pool. The five event kinds interleave with
// the (externally sorted) arrival stream:
//
//   - evActivate: a scaling-out replica finishes its activation delay and
//     starts accepting traffic.
//   - evXfer: a prefill-only engine finished a prompt at this instant and
//     the handoff is ready to book on the KV link. Handoffs are deferred to
//     events instead of booked inside the engine step so the link sees them
//     in issue-time order: engine steps pop by their *start* time, so a step
//     spanning [4.0, 5.0] executes before one spanning [4.5, 4.8], and
//     booking eagerly would queue the 4.8 handoff behind the 5.0 one.
//     The transfer-boundary shed check and the contention-aware decode pick
//     both run when this event fires.
//   - evDeliver: a KV handoff lands on the decode side of the transfer
//     link; the request enters its pre-picked decode replica.
//   - evPlan: a periodic autoscaler evaluation for one pool (the SLA
//     planner's adjustment interval, or the reactive policy's optional
//     tick).
//   - evStep: a busy replica's engine is due for its next iteration; the
//     event's timestamp is the replica's clock when the event was pushed.
//   - evRetry: cluster-front admission re-examines its held queue. A step
//     that released capacity does so at its *end* time, so — like evXfer —
//     the retry is deferred to an event rather than run inline: an eager
//     retry at the step's end clock could shed a head that an
//     earlier-timestamped event still in the heap would have placed.
//
// Advancing the cluster to an arrival time t pops events while their time
// is before t (activations exactly at t also fire, because a replica whose
// delay elapses at t must be eligible for that arrival — the same `t >=
// wakeAt` edge the scan-based router used). Each popped evStep runs exactly
// one engine iteration and, if the engine is still busy, re-inserts itself
// at the engine's new clock. Per event the cost is O(log(R+E)) heap work,
// replacing the previous router's per-arrival O(R) min-clock scan over all
// replicas (repeated once per engine iteration it triggered).
//
// A typed heap rather than container/heap for the same reason as the
// engine's arrival heap: interface boxing in heap.Push/Pop allocates, and
// Serve's steady state must not.

// evKind orders simultaneous events: activations first (so a replica waking
// exactly at an arrival's timestamp can receive it), then external arrivals
// (parallel mode routes them through the heap; the kind sits directly after
// evActivate so a same-instant arrival still sees the woken replica but
// runs before any same-instant booking, delivery, or step — exactly where
// the sequential Serve loop processes it), then handoff bookings (the wire
// must be priced before later work observes it), then KV deliveries (a
// landed handoff is routable work), then autoscaler evaluations, then
// engine steps.
type evKind uint8

const (
	evActivate evKind = iota
	// evArrive: an external request reaches the cluster front. Only the
	// parallel/streaming path (Cluster.ServeStream with Workers > 0) pushes
	// these; the sequential reference drives arrivals from its own loop, so
	// its heap never contains one and its event sequence is untouched.
	evArrive
	evXfer
	evDeliver
	evPlan
	evStep
	// evRetry sorts after the kinds above so a same-instant activation,
	// delivery, or step has already exposed its capacity when the held queue
	// re-examines.
	evRetry
	// Fault-injection kinds (faults.go). Appended after the pre-fault kinds
	// so every same-instant ordering above is untouched — a run with no
	// faults scheduled is event-for-event identical to the pre-fault heap.
	// A crash at the same instant as a step lands after the step: the
	// iteration that was already executing when the machine died still
	// completes (its effects were in flight), the next one does not.
	//
	//   - evCrash / evRecover: a replica fails at its scheduled instant and
	//     rejoins when its repair span elapses. ev.rep indexes the fault
	//     schedule (which names pool + replica), not a replica.
	//   - evSlow / evSlowEnd: a transient service-time degradation starts /
	//     clears. ev.rep indexes the fault schedule.
	//   - evXferRetry: a failed KV delivery re-books on the link after its
	//     backoff. Deferred to an event — like evXfer — so the link sees
	//     bookings in nondecreasing issue-time order. ev.rep is the handoff
	//     index, as for evDeliver.
	evCrash
	evRecover
	evSlow
	evSlowEnd
	evXferRetry
)

type event struct {
	at   float64
	kind evKind
	pool int // owning pool for evActivate/evPlan/evStep; target pool for evXfer/evDeliver
	rep  int // replica index for evActivate/evStep; source replica for evXfer; handoff index for evDeliver
	seq  int64
	req  *request.Request // the migrating request for evXfer/evDeliver
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	if h[i].kind == evXfer {
		// Handoffs issued at the exact same instant book deterministically:
		// earliest-arrived user first (then request ID), not whichever
		// engine's step event happened to pop first.
		a, b := h[i].req, h[j].req
		if a.ArrivalTime != b.ArrivalTime {
			return a.ArrivalTime < b.ArrivalTime
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) top() event { return h[0] }

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the request pointer
	*h = s[:n]
	s = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}
