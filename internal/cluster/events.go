package cluster

import "github.com/lightllm-go/lightllm/internal/request"

// The cluster is driven by one typed min-heap of simulation events — a
// single clock shared by every pool. The four event kinds interleave with
// the (externally sorted) arrival stream:
//
//   - evActivate: a scaling-out replica finishes its activation delay and
//     starts accepting traffic.
//   - evDeliver: a KV handoff from a prefill-only engine lands on the
//     decode side of the transfer link; the request is routed into the
//     decode pool at this instant.
//   - evPlan: a periodic autoscaler evaluation for one pool (the SLA
//     planner's adjustment interval, or the reactive policy's optional
//     tick).
//   - evStep: a busy replica's engine is due for its next iteration; the
//     event's timestamp is the replica's clock when the event was pushed.
//
// Advancing the cluster to an arrival time t pops events while their time
// is before t (activations exactly at t also fire, because a replica whose
// delay elapses at t must be eligible for that arrival — the same `t >=
// wakeAt` edge the scan-based router used). Each popped evStep runs exactly
// one engine iteration and, if the engine is still busy, re-inserts itself
// at the engine's new clock. Per event the cost is O(log(R+E)) heap work,
// replacing the previous router's per-arrival O(R) min-clock scan over all
// replicas (repeated once per engine iteration it triggered).
//
// A typed heap rather than container/heap for the same reason as the
// engine's arrival heap: interface boxing in heap.Push/Pop allocates, and
// Serve's steady state must not.

// evKind orders simultaneous events: activations first (so a replica waking
// exactly at an arrival's timestamp can receive it), then KV deliveries (a
// landed handoff is routable work), then autoscaler evaluations, then
// engine steps.
type evKind uint8

const (
	evActivate evKind = iota
	evDeliver
	evPlan
	evStep
)

type event struct {
	at   float64
	kind evKind
	pool int // owning pool for evActivate/evPlan/evStep; target pool for evDeliver
	rep  int // replica index for evActivate/evStep; handoff index for evDeliver
	seq  int64
	req  *request.Request // the migrating request for evDeliver
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) top() event { return h[0] }

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the request pointer
	*h = s[:n]
	s = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}
