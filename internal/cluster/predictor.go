package cluster

import "fmt"

// Predictor forecasts the next adjustment interval's value of one load
// signal (arrival rate, mean input length, mean output length) from the
// windowed per-interval observations the fleet feeds it — the load-
// prediction stage of an SLA-driven autoscaler (NVIDIA Dynamo's planner
// uses constant/ARIMA/Prophet; the constant, EWMA, and Holt linear-trend
// models here cover the same stable/smoothed/trending regimes without
// external fitting dependencies).
type Predictor interface {
	// Observe feeds one completed interval's observed value.
	Observe(v float64)
	// Predict returns the forecast for the next interval. Implementations
	// may return negative values on a downward trend; callers clamp.
	Predict() float64
}

// PredictorKind names a Predictor model.
type PredictorKind int

const (
	// ConstantPredictor assumes the next interval equals the last one —
	// right for stable load and long adjustment intervals.
	ConstantPredictor PredictorKind = iota
	// EWMAPredictor exponentially smooths the observations — robust to
	// noise, lags trends.
	EWMAPredictor
	// HoltPredictor is Holt's linear-trend double exponential smoothing —
	// extrapolates ramps one interval ahead, which is what lets the planner
	// scale out *before* a building burst saturates the fleet.
	HoltPredictor
)

// String implements fmt.Stringer.
func (k PredictorKind) String() string {
	switch k {
	case ConstantPredictor:
		return "constant"
	case EWMAPredictor:
		return "ewma"
	case HoltPredictor:
		return "holt"
	default:
		return fmt.Sprintf("predictor(%d)", int(k))
	}
}

// ParsePredictor resolves a predictor name (CLI flags).
func ParsePredictor(s string) (PredictorKind, error) {
	switch s {
	case "constant":
		return ConstantPredictor, nil
	case "ewma":
		return EWMAPredictor, nil
	case "holt":
		return HoltPredictor, nil
	default:
		return 0, fmt.Errorf("cluster: unknown predictor %q (constant, ewma, holt)", s)
	}
}

// New builds a fresh predictor instance of this kind with default smoothing
// parameters (one instance per load signal).
func (k PredictorKind) New() Predictor {
	switch k {
	case EWMAPredictor:
		return &ewma{alpha: 0.5}
	case HoltPredictor:
		return &holt{alpha: 0.6, beta: 0.35}
	default:
		return &constant{}
	}
}

// constant predicts the last observation.
type constant struct {
	last float64
}

func (c *constant) Observe(v float64) { c.last = v }
func (c *constant) Predict() float64  { return c.last }

// ewma predicts the exponentially weighted mean of the observations.
type ewma struct {
	alpha  float64
	level  float64
	primed bool
}

func (e *ewma) Observe(v float64) {
	if !e.primed {
		e.level, e.primed = v, true
		return
	}
	e.level = e.alpha*v + (1-e.alpha)*e.level
}

func (e *ewma) Predict() float64 { return e.level }

// holt is Holt's linear-trend method: a smoothed level plus a smoothed
// per-interval trend, forecast one interval ahead.
type holt struct {
	alpha, beta  float64
	level, trend float64
	observations int
}

func (h *holt) Observe(v float64) {
	switch h.observations {
	case 0:
		h.level = v
	case 1:
		h.trend = v - h.level
		h.level = v
	default:
		prevLevel := h.level
		h.level = h.alpha*v + (1-h.alpha)*(h.level+h.trend)
		h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	}
	h.observations++
}

func (h *holt) Predict() float64 { return h.level + h.trend }
