// Package router implements the paper's future-work proposal (§7):
// forwarding requests across multiple service instances based on each
// instance's *predicted future memory demand*, computed with the same
// Past-Future estimator the scheduler uses — plus predictive autoscaling
// on the same signal.
//
// Three routing policies are provided for comparison:
//
//   - RoundRobin: classic oblivious balancing.
//   - LeastLoaded: fewest in-flight requests (queue + batch).
//   - FutureHeadroom: smallest predicted future peak memory as a fraction
//     of capacity (running batch plus queued requests, conditional-quantile
//     predictions from the replica's own history window).
//
// The router is a simulation-level component: it advances its replicas'
// engines in timestamp order so that every routing decision observes each
// replica's state as of the request's arrival time.
package router

import (
	"fmt"
	"math"
	"sort"

	"github.com/lightllm-go/lightllm/internal/core"
	"github.com/lightllm-go/lightllm/internal/engine"
	"github.com/lightllm-go/lightllm/internal/request"
)

// Policy selects how arriving requests choose a replica.
type Policy int

const (
	// RoundRobin cycles through active replicas.
	RoundRobin Policy = iota
	// LeastLoaded picks the replica with the fewest in-flight requests.
	LeastLoaded
	// FutureHeadroom picks the replica whose predicted future peak memory
	// (running + queued, estimator-based) leaves the most headroom.
	FutureHeadroom
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case FutureHeadroom:
		return "future-headroom"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// AutoScale configures predictive scaling on the predicted-load signal.
type AutoScale struct {
	// Min and Max bound the active replica count.
	Min, Max int
	// HighWater: scale out when mean predicted load across active replicas
	// exceeds this fraction (e.g. 0.85).
	HighWater float64
	// LowWater: scale in when mean predicted load falls below this
	// fraction (e.g. 0.30) and a replica is drained.
	LowWater float64
	// ActivationDelay is the simulated seconds between a scale-out decision
	// and the replica accepting traffic (model load time).
	ActivationDelay float64
}

// Config configures a Router.
type Config struct {
	// Replicas are homogeneous serving engines. Required, ≥ 1.
	Replicas []*engine.Engine
	// Policy selects the routing policy.
	Policy Policy
	// Quantile for FutureHeadroom predictions. 0 selects 0.9.
	Quantile float64
	// Scale enables predictive autoscaling; nil serves on all replicas.
	Scale *AutoScale
}

// Router distributes a time-ordered request stream over replicas.
type Router struct {
	cfg      Config
	rr       int
	active   []bool
	wakeAt   []float64 // activation time for scaling-out replicas
	routed   []int
	scaleUps int
	scaleIns int
}

// New validates the configuration.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: at least one replica required")
	}
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.9
	}
	if cfg.Quantile < 0 || cfg.Quantile > 1 {
		return nil, fmt.Errorf("router: quantile %v outside [0,1]", cfg.Quantile)
	}
	r := &Router{
		cfg:    cfg,
		active: make([]bool, len(cfg.Replicas)),
		wakeAt: make([]float64, len(cfg.Replicas)),
		routed: make([]int, len(cfg.Replicas)),
	}
	initial := len(cfg.Replicas)
	if cfg.Scale != nil {
		if cfg.Scale.Min < 1 || cfg.Scale.Max > len(cfg.Replicas) || cfg.Scale.Min > cfg.Scale.Max {
			return nil, fmt.Errorf("router: bad autoscale bounds [%d, %d] for %d replicas",
				cfg.Scale.Min, cfg.Scale.Max, len(cfg.Replicas))
		}
		initial = cfg.Scale.Min
	}
	for i := 0; i < initial; i++ {
		r.active[i] = true
	}
	return r, nil
}

// RoutedCounts returns how many requests each replica received.
func (r *Router) RoutedCounts() []int { return append([]int(nil), r.routed...) }

// ScaleEvents returns (scale-out, scale-in) decision counts.
func (r *Router) ScaleEvents() (out, in int) { return r.scaleUps, r.scaleIns }

// ActiveReplicas returns the number of replicas accepting traffic.
func (r *Router) ActiveReplicas() int {
	n := 0
	for _, a := range r.active {
		if a {
			n++
		}
	}
	return n
}

// Imbalance returns the coefficient of variation of per-replica routed
// counts (0 = perfectly balanced). Only meaningful without autoscaling.
func (r *Router) Imbalance() float64 {
	var sum float64
	for _, c := range r.routed {
		sum += float64(c)
	}
	n := float64(len(r.routed))
	mean := sum / n
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, c := range r.routed {
		d := float64(c) - mean
		ss += d * d
	}
	return math.Sqrt(ss/n) / mean
}

// Serve routes the requests (sorted by arrival time internally), advancing
// replicas in timestamp order so each decision sees replica state as of the
// request's arrival, then drains all replicas until deadline. It returns
// each replica's result.
func (r *Router) Serve(reqs []*request.Request, deadline float64) []*engine.Result {
	sorted := append([]*request.Request(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ArrivalTime < sorted[j].ArrivalTime })

	for _, req := range sorted {
		if req.ArrivalTime > deadline {
			break
		}
		r.advanceTo(req.ArrivalTime)
		if r.cfg.Scale != nil {
			r.autoscale(req.ArrivalTime)
		}
		idx := r.pick(req)
		r.routed[idx]++
		r.cfg.Replicas[idx].Submit(req)
	}
	results := make([]*engine.Result, len(r.cfg.Replicas))
	for i, e := range r.cfg.Replicas {
		results[i] = e.RunUntil(deadline)
	}
	return results
}

// advanceTo steps every busy replica whose clock lags t.
func (r *Router) advanceTo(t float64) {
	for {
		idx := -1
		minClock := t
		for i, e := range r.cfg.Replicas {
			if !e.Idle() && e.Clock() < minClock {
				minClock = e.Clock()
				idx = i
			}
		}
		if idx < 0 {
			return
		}
		if !r.cfg.Replicas[idx].Step() {
			return
		}
	}
}

// pick selects the replica for one request under the configured policy.
func (r *Router) pick(req *request.Request) int {
	candidates := r.activeIndices(req.ArrivalTime)
	switch r.cfg.Policy {
	case LeastLoaded:
		best, bestLoad := candidates[0], math.MaxInt
		for _, i := range candidates {
			e := r.cfg.Replicas[i]
			load := e.QueueLen() + e.RunningLen()
			if load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	case FutureHeadroom:
		best, bestLoad := candidates[0], math.Inf(1)
		for _, i := range candidates {
			load := r.predictedLoad(i)
			if load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	default: // RoundRobin
		r.rr++
		return candidates[r.rr%len(candidates)]
	}
}

// predictedLoad returns a replica's predicted future peak memory (running
// batch plus queued requests) as a fraction of its capacity.
func (r *Router) predictedLoad(i int) float64 {
	e := r.cfg.Replicas[i]
	batch := e.RunningRequests()
	batch = append(batch, e.QueuedRequests()...)
	peak := core.PredictedBatchPeak(batch, e.History(), r.cfg.Quantile)
	return float64(peak) / float64(e.Pool().CapacityTokens())
}

// activeIndices lists replicas accepting traffic at time t (activating
// replicas join once their delay elapses).
func (r *Router) activeIndices(t float64) []int {
	var out []int
	for i, a := range r.active {
		if a && t >= r.wakeAt[i] {
			out = append(out, i)
		}
	}
	if out == nil {
		// All replicas still activating: fall back to the first marked
		// active so traffic is never dropped by the router itself.
		for i, a := range r.active {
			if a {
				return []int{i}
			}
		}
		return []int{0}
	}
	return out
}

// autoscale applies the high/low-water policy on the mean predicted load.
func (r *Router) autoscale(now float64) {
	sc := r.cfg.Scale
	var loadSum float64
	n := 0
	for i, a := range r.active {
		if !a || now < r.wakeAt[i] {
			continue
		}
		loadSum += r.predictedLoad(i)
		n++
	}
	if n == 0 {
		return
	}
	mean := loadSum / float64(n)
	if mean > sc.HighWater && r.ActiveReplicas() < sc.Max {
		for i, a := range r.active {
			if !a {
				r.active[i] = true
				r.wakeAt[i] = now + sc.ActivationDelay
				r.scaleUps++
				break
			}
		}
		return
	}
	if mean < sc.LowWater && r.ActiveReplicas() > sc.Min {
		// Deactivate the last active, drained replica.
		for i := len(r.active) - 1; i >= 0; i-- {
			e := r.cfg.Replicas[i]
			if r.active[i] && e.QueueLen() == 0 && e.RunningLen() == 0 {
				r.active[i] = false
				r.scaleIns++
				break
			}
		}
	}
}
