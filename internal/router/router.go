// Package router is the compatibility surface over the internal/cluster
// fleet simulator: it keeps the original multi-replica routing API (the
// paper's §7 future-work proposal — forwarding requests across service
// instances by *predicted future memory demand*) while the mechanics live
// in cluster.Fleet.
//
// Three routing policies are provided for comparison:
//
//   - RoundRobin: classic oblivious balancing.
//   - LeastLoaded: fewest in-flight requests (queue + batch).
//   - FutureHeadroom: smallest predicted future peak memory as a fraction
//     of capacity (running batch, queued requests, and the candidate;
//     conditional-quantile predictions from the replica's own history
//     window), probed through one warm core.PeakEstimator per replica.
//
// Compared with the original scan-based router, the fleet advances replicas
// through an event heap (O(log R) per engine iteration instead of an O(R)
// scan), probes without allocating, and — beyond this adapter's reactive
// high/low-water AutoScale — offers a predictive SLA planner
// (cluster.PlannerConfig) that this package intentionally does not wrap.
package router

import (
	"github.com/lightllm-go/lightllm/internal/cluster"
	"github.com/lightllm-go/lightllm/internal/engine"
	"github.com/lightllm-go/lightllm/internal/request"
)

// Policy selects how arriving requests choose a replica.
type Policy = cluster.Policy

const (
	// RoundRobin cycles through active replicas.
	RoundRobin = cluster.RoundRobin
	// LeastLoaded picks the replica with the fewest in-flight requests.
	LeastLoaded = cluster.LeastLoaded
	// FutureHeadroom picks the replica whose predicted future peak memory
	// leaves the most headroom.
	FutureHeadroom = cluster.FutureHeadroom
)

// AutoScale configures reactive scaling on the predicted-load signal.
type AutoScale = cluster.AutoScale

// AdmissionConfig configures cluster-front admission control (EDF hold +
// deadline shedding) in front of the routed fleet.
type AdmissionConfig = cluster.AdmissionConfig

// Config configures a Router.
type Config struct {
	// Replicas are the serving engines. Required, ≥ 1. Mixed hardware is
	// supported: the cluster layer groups replicas into flavors and
	// speed-normalizes its routing probes across them.
	Replicas []*engine.Engine
	// Policy selects the routing policy.
	Policy Policy
	// Quantile for FutureHeadroom predictions. 0 selects 0.9.
	Quantile float64
	// Scale enables reactive autoscaling; nil serves on all replicas.
	Scale *AutoScale
	// Admission enables cluster-front admission control: arrivals no
	// replica can take now are held in a deadline-indexed queue and — with
	// shedding — refused once their TTFT budget cannot cover the predicted
	// service floor. nil routes every arrival immediately.
	Admission *AdmissionConfig
}

// Router distributes a time-ordered request stream over replicas.
type Router struct {
	fleet *cluster.Fleet
}

// New validates the configuration.
func New(cfg Config) (*Router, error) {
	f, err := cluster.New(cluster.Config{
		Replicas:  cfg.Replicas,
		Policy:    cfg.Policy,
		Quantile:  cfg.Quantile,
		Scale:     cfg.Scale,
		Admission: cfg.Admission,
	})
	if err != nil {
		return nil, err
	}
	return &Router{fleet: f}, nil
}

// Serve routes the requests (sorted by arrival time internally), advancing
// replicas in timestamp order so each decision sees replica state as of the
// request's arrival, then drains all replicas until deadline. It returns
// each replica's result.
func (r *Router) Serve(reqs []*request.Request, deadline float64) []*engine.Result {
	return r.fleet.Serve(reqs, deadline)
}

// RoutedCounts returns how many requests each replica received.
func (r *Router) RoutedCounts() []int { return r.fleet.RoutedCounts() }

// ScaleEvents returns (scale-out, scale-in) decision counts.
func (r *Router) ScaleEvents() (out, in int) { return r.fleet.ScaleEvents() }

// ActiveReplicas returns the number of replicas accepting traffic.
func (r *Router) ActiveReplicas() int { return r.fleet.ActiveReplicas() }

// Imbalance returns the coefficient of variation of per-replica routed
// counts (0 = perfectly balanced). Only meaningful without autoscaling.
func (r *Router) Imbalance() float64 { return r.fleet.Imbalance() }

// ShedRequests returns every request refused by admission control, in shed
// order (nil without Config.Admission). Complete after Serve.
func (r *Router) ShedRequests() []*request.Request { return r.fleet.ShedRequests() }

// HeldRequests returns the number of arrivals currently held at the fleet
// front (0 after Serve: the run flush-sheds leftovers).
func (r *Router) HeldRequests() int { return r.fleet.HeldRequests() }
