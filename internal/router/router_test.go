package router

import (
	"testing"

	"github.com/lightllm-go/lightllm/internal/core"
	"github.com/lightllm-go/lightllm/internal/engine"
	"github.com/lightllm-go/lightllm/internal/hw"
	"github.com/lightllm-go/lightllm/internal/model"
	"github.com/lightllm-go/lightllm/internal/perf"
	"github.com/lightllm-go/lightllm/internal/request"
	"github.com/lightllm-go/lightllm/internal/rng"
	"github.com/lightllm-go/lightllm/internal/workload"
)

func replicas(t *testing.T, n, capacity int) []*engine.Engine {
	t.Helper()
	pm := perf.MustNew(perf.Config{Model: model.Llama2_7B, Cluster: hw.NewCluster(hw.A100_80G, 1)})
	out := make([]*engine.Engine, n)
	for i := range out {
		out[i] = engine.MustNew(engine.Config{
			Perf: pm,
			Scheduler: core.MustNewPastFuture(core.PastFutureConfig{
				Reserved: 0.05, Rng: rng.New(uint64(i + 1)),
			}),
			CapacityOverride: capacity,
		})
	}
	return out
}

func poissonReqs(n int, rate float64, seed uint64) []*request.Request {
	r := rng.New(seed)
	reqs := workload.Build(workload.ShareGPT, r, n, 1, 512)
	workload.AssignPoissonArrivals(reqs, r, rate, 0)
	return reqs
}

func TestRouterValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no replicas accepted")
	}
	if _, err := New(Config{Replicas: replicas(t, 2, 1000), Quantile: 1.5}); err == nil {
		t.Fatal("bad quantile accepted")
	}
	if _, err := New(Config{
		Replicas: replicas(t, 2, 1000),
		Scale:    &AutoScale{Min: 0, Max: 2},
	}); err == nil {
		t.Fatal("bad autoscale bounds accepted")
	}
}

func TestRoundRobinBalances(t *testing.T) {
	r, err := New(Config{Replicas: replicas(t, 4, 50_000), Policy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	results := r.Serve(poissonReqs(200, 20, 1), 1e9)
	counts := r.RoutedCounts()
	for i, c := range counts {
		if c != 50 {
			t.Fatalf("replica %d got %d requests: %v", i, c, counts)
		}
	}
	total := 0
	for _, res := range results {
		total += len(res.Finished)
	}
	if total != 200 {
		t.Fatalf("finished %d of 200", total)
	}
	if r.Imbalance() != 0 {
		t.Fatalf("round robin imbalance %v", r.Imbalance())
	}
}

func TestAllRequestsServedOnce(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastLoaded, FutureHeadroom} {
		r, err := New(Config{Replicas: replicas(t, 3, 50_000), Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		reqs := poissonReqs(120, 30, 2)
		results := r.Serve(reqs, 1e9)
		seen := map[int64]bool{}
		for _, res := range results {
			for _, req := range res.Finished {
				if seen[req.ID] {
					t.Fatalf("%v: request %d served twice", pol, req.ID)
				}
				seen[req.ID] = true
			}
		}
		if len(seen) != 120 {
			t.Fatalf("%v: served %d of 120", pol, len(seen))
		}
	}
}

func TestFutureHeadroomAvoidsLoadedReplica(t *testing.T) {
	// Replica 0 is pre-loaded with long-running requests; the headroom
	// policy must steer arrivals to replica 1.
	reps := replicas(t, 2, 20_000)
	for i := 0; i < 8; i++ {
		reps[0].Submit(request.New(int64(1000+i), 1000, 1000, 1200, 0))
	}
	r, err := New(Config{Replicas: reps, Policy: FutureHeadroom})
	if err != nil {
		t.Fatal(err)
	}
	reqs := poissonReqs(40, 50, 3)
	r.Serve(reqs, 1e9)
	counts := r.RoutedCounts()
	if counts[1] <= counts[0] {
		t.Fatalf("headroom routing did not avoid the loaded replica: %v", counts)
	}
}

func TestLeastLoadedAvoidsQueuedReplica(t *testing.T) {
	reps := replicas(t, 2, 20_000)
	for i := 0; i < 30; i++ {
		reps[0].Submit(request.New(int64(1000+i), 2000, 500, 600, 0))
	}
	r, err := New(Config{Replicas: reps, Policy: LeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	r.Serve(poissonReqs(40, 50, 4), 1e9)
	counts := r.RoutedCounts()
	if counts[1] <= counts[0] {
		t.Fatalf("least-loaded routing did not avoid the queued replica: %v", counts)
	}
}

func TestRoundRobinFirstPickIsReplicaZero(t *testing.T) {
	// Regression: the rotation counter used to be incremented before the
	// modulo, so the first request skipped replica 0.
	r, err := New(Config{Replicas: replicas(t, 3, 50_000), Policy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	one := poissonReqs(1, 5, 42)
	r.Serve(one, 1e9)
	counts := r.RoutedCounts()
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("first round-robin pick went to %v, want replica 0", counts)
	}
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" ||
		FutureHeadroom.String() != "future-headroom" {
		t.Fatal("policy strings wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

func TestAutoscaleOutUnderLoad(t *testing.T) {
	// Small replicas + heavy traffic: the router must scale from 1 to more
	// active replicas.
	reps := replicas(t, 4, 8_000)
	r, err := New(Config{
		Replicas: reps,
		Policy:   FutureHeadroom,
		Scale:    &AutoScale{Min: 1, Max: 4, HighWater: 0.6, LowWater: 0.1, ActivationDelay: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ActiveReplicas() != 1 {
		t.Fatalf("initial active = %d", r.ActiveReplicas())
	}
	reqs := poissonReqs(300, 40, 5)
	r.Serve(reqs, 1e9)
	out, _ := r.ScaleEvents()
	if out == 0 {
		t.Fatal("no scale-out under heavy load")
	}
	if r.ActiveReplicas() < 2 {
		t.Fatalf("active replicas %d after heavy load", r.ActiveReplicas())
	}
}

func TestAutoscaleInWhenIdle(t *testing.T) {
	reps := replicas(t, 3, 8_000)
	r, err := New(Config{
		Replicas: reps,
		Policy:   LeastLoaded,
		Scale:    &AutoScale{Min: 1, Max: 3, HighWater: 0.7, LowWater: 0.2, ActivationDelay: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: heavy burst forces scale-out. Phase 2: a long trickle lets
	// load fall below the low-water mark, triggering scale-in.
	burst := poissonReqs(200, 50, 6)
	trickle := workload.Build(workload.ShareGPT, rng.New(7), 60, 10_000, 256)
	rr := rng.New(8)
	workload.AssignPoissonArrivals(trickle, rr, 0.5, 120) // slow arrivals after the burst
	all := append(burst, trickle...)
	r.Serve(all, 1e9)
	up, down := r.ScaleEvents()
	if up == 0 {
		t.Fatal("no scale-out during burst")
	}
	if down == 0 {
		t.Fatal("no scale-in during trickle")
	}
}

func TestHeadroomBeatsRoundRobinOnSkewedLoad(t *testing.T) {
	// Heterogeneous request sizes create load skew that round-robin cannot
	// see. At moderate utilisation (near the knee, where queueing is
	// transient rather than saturated), estimator-driven routing yields
	// lower queueing delay: mean TTFT must beat round-robin.
	meanTTFT := func(policy Policy) float64 {
		reps := replicas(t, 3, 30_000)
		r, err := New(Config{Replicas: reps, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.Uniform{Label: "skewed", InLo: 100, InHi: 4000, OutLo: 50, OutHi: 2000}
		rr := rng.New(9)
		reqs := workload.Build(gen, rr, 300, 1, 2048)
		workload.AssignPoissonArrivals(reqs, rr, 1.3, 0)
		results := r.Serve(reqs, 1e9)
		var sum float64
		var n int
		for _, res := range results {
			for _, req := range res.Finished {
				sum += req.TTFT()
				n++
			}
		}
		if n == 0 {
			t.Fatal("nothing finished")
		}
		return sum / float64(n)
	}
	hr := meanTTFT(FutureHeadroom)
	rrob := meanTTFT(RoundRobin)
	if hr >= rrob {
		t.Fatalf("future-headroom mean TTFT %.2fs not below round-robin %.2fs", hr, rrob)
	}
}

// TestRouterAdmissionSheds pins the adapter's admission threading: a Router
// built with an AdmissionConfig runs the cluster-front pipeline — an
// overloaded stream sheds terminally, every arrival ends exactly once in
// {completed, shed}, and nothing stays held after Serve.
func TestRouterAdmissionSheds(t *testing.T) {
	reps := replicas(t, 2, 8_000)
	r, err := New(Config{
		Replicas:  reps,
		Policy:    FutureHeadroom,
		Admission: &AdmissionConfig{TTFTBudget: 4, Shed: true, Slack: 0.5, MaxProbe: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	rr := rng.New(5)
	reqs := workload.Build(workload.ShareGPT, rr, n, 1, 512)
	workload.AssignPoissonArrivals(reqs, rr, 60, 0)
	results := r.Serve(reqs, 1e9)
	finished := 0
	for _, res := range results {
		finished += len(res.Finished)
	}
	shed := len(r.ShedRequests())
	if shed == 0 {
		t.Fatal("overloaded router shed nothing; admission not threaded")
	}
	if finished+shed != n {
		t.Fatalf("%d finished + %d shed != %d arrivals", finished, shed, n)
	}
	if r.HeldRequests() != 0 {
		t.Fatalf("%d requests left held after Serve", r.HeldRequests())
	}
	for _, s := range r.ShedRequests() {
		if s.Outcome != request.OutcomeShed {
			t.Fatalf("shed request %d outcome %v", s.ID, s.Outcome)
		}
	}
}
