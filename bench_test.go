package lightllm

// One benchmark per table and figure of the paper (DESIGN.md §3), each
// regenerating the experiment at reduced scale, plus micro-benchmarks of
// the scheduler's hot paths. Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale experiment output comes from `go run ./cmd/pfsim -exp all`.

import (
	"testing"
)

func BenchmarkTable1_SchedulerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunTable1(BenchOptions{Seed: 1, Scale: 0.02})
		if len(res.Rows) != 27 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkTable2_Multimodal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunTable2(BenchOptions{Seed: 1, Scale: 0.05})
		b.ReportMetric(res.Rows[0].Speedup, "qwen-speedup")
	}
}

func BenchmarkFigure1_MemoryComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure1(BenchOptions{Seed: 1, Scale: 0.05})
		if len(res.Cells) != 6 {
			b.Fatal("figure 1 incomplete")
		}
	}
}

func BenchmarkFigure3_WindowSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure3(BenchOptions{Seed: 1, Scale: 0.2})
		b.ReportMetric(res.Rows[0].Diagonal, "conv-diagonal")
	}
}

func BenchmarkFigure4_WindowSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure4(BenchOptions{Seed: 1, Scale: 0.25})
		if len(res.Rows) == 0 {
			b.Fatal("figure 4 empty")
		}
	}
}

func BenchmarkFigure5_AdmissionTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure5(BenchOptions{})
		if res.PeakAtT != 19 || res.PeakAtT1 != 18 {
			b.Fatal("figure 5 numbers wrong")
		}
	}
}

func BenchmarkFigure6_ToyScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure6(BenchOptions{})
		if res.AdmitStep["looking-to-future"] != 1 {
			b.Fatal("figure 6 behaviour wrong")
		}
	}
}

func BenchmarkFigure7_GoodputVsClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure7(BenchOptions{Seed: 1, Scale: 0.15},
			[]string{"Llama2-7B"}, []string{"ShareGPT-o1"})
		panel := res.Panel("Llama2-7B-Chat", "ShareGPT-o1")
		if c := panel.Curve("past-future"); c != nil {
			b.ReportMetric(c.PeakGoodput(), "pf-peak-goodput")
		}
	}
}

func BenchmarkFigure8_ParameterSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure8(BenchOptions{Seed: 1, Scale: 0.05})
		if len(res.Points) != 19 {
			b.Fatal("figure 8 incomplete")
		}
	}
}

func BenchmarkFigure9_FrameworkComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure9(BenchOptions{Seed: 1, Scale: 0.15},
			[]string{"Llama2-7B"}, []string{"A100-80G"})
		if ll := res.Cell("Llama2-7B", "A100-80G", "LightLLM"); ll != nil {
			b.ReportMetric(ll.MaxGoodput, "lightllm-goodput")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunAblation(BenchOptions{Seed: 1, Scale: 0.03})
		if len(res.Rows) == 0 {
			b.Fatal("ablation empty")
		}
	}
}

// Micro-benchmarks of the serving hot path.

func BenchmarkServeShareGPT100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, err := NewServing(ServingConfig{Model: "Llama2-7B-Chat", GPU: "A100-80G"})
		if err != nil {
			b.Fatal(err)
		}
		eng.SubmitAll(BuildWorkload(ShareGPT, NewRNG(1), 100, 1, 1024))
		res := eng.Run()
		b.ReportMetric(res.Throughput(), "sim-tok/s")
	}
}

func BenchmarkClosedLoop40Clients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, err := NewServing(ServingConfig{
			Model: "Llama2-7B-Chat", GPU: "A100-80G", QueueTimeout: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		NewClosedLoop(eng, ShareGPTO1, NewRNG(2), 40, 8192, 0, 60)
		eng.RunUntil(60)
	}
}
