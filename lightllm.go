// Package lightllm is the public facade of the Past-Future scheduler
// reproduction (ASPLOS 2025, "Past-Future Scheduler for LLM Serving under
// SLA Guarantees"): a continuous-batching LLM serving engine simulator with
// the paper's scheduler, its baselines, calibrated GPU/model performance
// models, workload synthesizers, SLA metrics, and one experiment runner per
// table and figure of the paper's evaluation.
//
// Quick start:
//
//	eng, err := lightllm.NewServing(lightllm.ServingConfig{
//		Model:     "Llama2-7B-Chat",
//		GPU:       "A100-80G",
//		Scheduler: "past-future",
//	})
//	...
//	eng.SubmitAll(reqs)
//	result := eng.Run()
//
// The experiment runners regenerate the paper's results:
//
//	lightllm.RunTable1(lightllm.BenchOptions{Out: os.Stdout})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured comparisons.
package lightllm

import (
	"fmt"
	"strings"

	"github.com/lightllm-go/lightllm/internal/bench"
	"github.com/lightllm-go/lightllm/internal/core"
	"github.com/lightllm-go/lightllm/internal/engine"
	"github.com/lightllm-go/lightllm/internal/hw"
	"github.com/lightllm-go/lightllm/internal/metrics"
	"github.com/lightllm-go/lightllm/internal/model"
	"github.com/lightllm-go/lightllm/internal/perf"
	"github.com/lightllm-go/lightllm/internal/request"
	"github.com/lightllm-go/lightllm/internal/rng"
	"github.com/lightllm-go/lightllm/internal/workload"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Engine is the continuous-batching serving engine.
	Engine = engine.Engine
	// EngineConfig configures an Engine (see NewServing for the high-level
	// constructor).
	EngineConfig = engine.Config
	// Result summarises an engine run.
	Result = engine.Result
	// Request is one generation request.
	Request = request.Request
	// Scheduler is the admission-policy interface.
	Scheduler = core.Scheduler
	// PastFutureConfig parameterises the paper's scheduler.
	PastFutureConfig = core.PastFutureConfig
	// SLA is a latency service-level agreement (TTFT / MTPOT bounds).
	SLA = metrics.SLA
	// Summary aggregates SLA metrics and goodput over a run.
	Summary = metrics.Summary
	// ModelSpec describes an LLM architecture.
	ModelSpec = model.Spec
	// Cluster is a tensor-parallel GPU group.
	Cluster = hw.Cluster
	// PerfModel converts engine iterations into durations.
	PerfModel = perf.Model
	// Generator produces workload length pairs.
	Generator = workload.Generator
	// RNG is the deterministic random source used across the library.
	RNG = rng.RNG
	// BenchOptions configures experiment runners.
	BenchOptions = bench.Options
)

// Paper SLA presets (§5.1).
var (
	// SLASmall is the 7B/13B SLA: TTFT < 10 s, MTPOT < 1.5 s.
	SLASmall = metrics.SLASmall
	// SLALarge is the 70B SLA: TTFT < 15 s, MTPOT < 5 s.
	SLALarge = metrics.SLALarge
)

// NewRNG returns a deterministic random source.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewRequest constructs a request (input prompt tokens, hidden true output
// length, max_new_tokens cap, arrival time in seconds).
func NewRequest(id int64, inputLen, trueOutputLen, maxNewTokens int, arrival float64) *Request {
	return request.New(id, inputLen, trueOutputLen, maxNewTokens, arrival)
}

// Summarize computes SLA metrics and goodput over requests finishing in
// (from, to].
func Summarize(finished []*Request, sla SLA, from, to float64) Summary {
	return metrics.Summarize(finished, sla, from, to)
}

// ServingConfig is the high-level deployment description for NewServing.
type ServingConfig struct {
	// Model is a predefined model name ("Llama2-7B-Chat", "Llama2-13B-Chat",
	// "Llama2-70B-Chat", "Qwen-VL-Chat", "LLaVA-1.5-7B", "LLaVA-1.5-13B").
	Model string
	// GPU is a predefined GPU name ("A100-80G", "H800", "RTX-4090", "A30").
	GPU string
	// TP is the tensor-parallel degree. 0 selects 1.
	TP int
	// Scheduler selects the admission policy: "past-future" (default),
	// "aggressive", "conservative", or "oracle".
	Scheduler string
	// Param is the scheduler knob: reserved fraction (past-future, default
	// 0.03), watermark (aggressive, default 0.97), or overcommit
	// (conservative, default 1.0).
	Param float64
	// Seed drives the Past-Future sampling predictions. 0 selects 1.
	Seed uint64
	// BlockSize is the KV allocation granularity (default 1, LightLLM
	// token granularity; 16 emulates vLLM paging).
	BlockSize int
	// QueueTimeout, when positive, enables SLA-aware client abandonment.
	QueueTimeout float64
	// Strategy selects the iteration composition: "" (prefill-priority),
	// "splitfuse" (DeepSpeed-MII chunked prefill), or "static" (no
	// continuous batching — fixed padded batches, Table 2's origin mode).
	Strategy string
	// StaticBatchSize is the fixed batch size for the static strategy.
	StaticBatchSize int
}

// NewServing builds an engine from a high-level deployment description.
func NewServing(cfg ServingConfig) (*Engine, error) {
	spec, err := model.ByName(cfg.Model)
	if err != nil {
		return nil, err
	}
	gpu, err := hw.GPUByName(cfg.GPU)
	if err != nil {
		return nil, err
	}
	tp := cfg.TP
	if tp == 0 {
		tp = 1
	}
	pm, err := perf.New(perf.Config{Model: spec, Cluster: hw.NewCluster(gpu, tp)})
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	var strategy engine.Strategy
	switch strings.ToLower(strings.TrimSpace(cfg.Strategy)) {
	case "", "prefill-priority":
		strategy = engine.PrefillPriority
	case "splitfuse":
		strategy = engine.SplitFuse
	case "static", "static-batch":
		strategy = engine.StaticBatch
	default:
		return nil, fmt.Errorf("lightllm: unknown strategy %q", cfg.Strategy)
	}
	var sched Scheduler
	if strategy != engine.StaticBatch {
		sched, err = NewScheduler(cfg.Scheduler, cfg.Param, seed)
		if err != nil {
			return nil, err
		}
	}
	return engine.New(engine.Config{
		Perf:            pm,
		Scheduler:       sched,
		BlockSize:       cfg.BlockSize,
		QueueTimeout:    cfg.QueueTimeout,
		Strategy:        strategy,
		StaticBatchSize: cfg.StaticBatchSize,
	})
}

// NewScheduler constructs a scheduler by name. param semantics depend on
// the family (see ServingConfig.Param); 0 selects the family default.
func NewScheduler(name string, param float64, seed uint64) (Scheduler, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "past-future", "pastfuture", "pf":
		if param == 0 {
			param = 0.03
		}
		return core.NewPastFuture(core.PastFutureConfig{Reserved: param, Rng: rng.New(seed)})
	case "aggressive", "vllm":
		if param == 0 {
			param = 0.97
		}
		return core.NewAggressive(param)
	case "conservative", "tgi":
		if param == 0 {
			param = 1.0
		}
		return core.NewConservative(param)
	case "oracle", "optimum":
		return core.NewOracle(), nil
	default:
		return nil, fmt.Errorf("lightllm: unknown scheduler %q", name)
	}
}

// Workload presets (paper §5.1).
var (
	// Distribution1 is the decode-heavy uniform workload (32–4k / 2k–4k).
	Distribution1 Generator = workload.Distribution1
	// Distribution2 is the balanced uniform workload (3k–5k / 3k–5k).
	Distribution2 Generator = workload.Distribution2
	// Distribution3 is the prefill-heavy uniform workload (2k–4k / 32–4k).
	Distribution3 Generator = workload.Distribution3
	// ShareGPT approximates the ShareGPT conversation workload.
	ShareGPT Generator = workload.ShareGPT
	// ShareGPTO1 approximates the decode-heavy ShareGPT-o1 reasoning
	// workload.
	ShareGPTO1 Generator = workload.ShareGPTO1
)

// BuildWorkload materialises n requests from a generator (batch arrivals).
func BuildWorkload(gen Generator, r *RNG, n int, firstID int64, maxNew int) []*Request {
	return workload.Build(gen, r, n, firstID, maxNew)
}

// NewClosedLoop attaches N closed-loop clients to an engine until deadline.
func NewClosedLoop(eng *Engine, gen Generator, r *RNG, clients, maxNew int, think, deadline float64) *workload.ClosedLoop {
	return workload.NewClosedLoop(eng, gen, r, clients, maxNew, think, deadline)
}

// Experiment runners — one per table/figure of the paper (§5). Each prints
// a formatted table to opts.Out and returns structured results.
var (
	RunTable1    = bench.RunTable1
	RunTable2    = bench.RunTable2
	RunFigure8   = bench.RunFigure8
	RunRouter    = bench.RunRouter
	RunPredictor = bench.RunPredictor
	RunFigure1   = bench.RunFigure1
	RunFigure3   = bench.RunFigure3
	RunFigure4   = bench.RunFigure4
	RunFigure5   = bench.RunFigure5
	RunFigure6   = bench.RunFigure6
	RunAblation  = bench.RunAblation
)

// RunFigure7 reproduces the goodput-vs-clients panels; model/dataset
// filters (prefix match) limit the sweep.
func RunFigure7(opts BenchOptions, models, datasets []string) *bench.Fig7Result {
	return bench.RunFigure7(bench.Fig7Options{Options: opts, Models: models, Datasets: datasets})
}

// RunFigure9 reproduces the framework comparison; model/hardware filters
// (prefix match) limit the sweep.
func RunFigure9(opts BenchOptions, models, hardware []string) *bench.Fig9Result {
	return bench.RunFigure9(bench.Fig9Options{Options: opts, Models: models, Hardware: hardware})
}
