// Codegen: a prefill-heavy code-completion service (long file contexts,
// short completions — the paper's Distribution-3 regime) plus the
// window-similarity analysis that justifies the Past-Future prediction:
// adjacent time windows of a single service share their output-length
// distribution.
//
//	go run ./examples/codegen
package main

import (
	"fmt"
	"log"

	"github.com/lightllm-go/lightllm"
	"github.com/lightllm-go/lightllm/internal/rng"
	"github.com/lightllm-go/lightllm/internal/workload"
)

func main() {
	// Part 1: how stable is a code-completion trace's output distribution?
	lengths := workload.InHouseCode.Lengths(rng.New(3), 20_000)
	m := workload.WindowSimilarityMatrix(lengths, 1000)
	fmt.Printf("code-completion trace, %d windows of 1000 requests:\n", len(m))
	fmt.Printf("  adjacent-window similarity: %.3f\n", workload.DiagonalMean(m))
	fmt.Printf("  all-pairs similarity:       %.3f\n", workload.GlobalMean(m))
	fmt.Println("  -> recent history predicts the near future; the scheduler can trust its window")

	// Part 2: serve the prefill-heavy load with past-future vs aggressive.
	fmt.Printf("\n%-14s %10s %8s %10s %12s\n", "scheduler", "goodput", "SLA%", "evictions", "mem-util")
	for _, sched := range []string{"aggressive", "past-future"} {
		eng, err := lightllm.NewServing(lightllm.ServingConfig{
			Model:        "Llama2-7B-Chat",
			GPU:          "A100-80G",
			Scheduler:    sched,
			QueueTimeout: lightllm.SLASmall.TTFT,
		})
		if err != nil {
			log.Fatal(err)
		}
		const duration, warmup = 600.0, 300.0 // let the cold start wash out
		lightllm.NewClosedLoop(eng, lightllm.Distribution3, lightllm.NewRNG(11), 50, 4096, 0, duration)
		res := eng.RunUntil(duration)
		sum := lightllm.Summarize(res.Finished, lightllm.SLASmall, warmup, duration)
		sum.AddTimedOut(res.TimedOut, warmup, duration)
		fmt.Printf("%-14s %7.0f t/s %7.1f%% %10d %11.1f%%\n",
			sched, sum.Goodput, sum.SLARate()*100, res.Evictions, res.MemUtilization*100)
	}
	fmt.Println("\nprefill-heavy loads are the aggressive scheduler's best case (outputs")
	fmt.Println("are short, so ignoring them costs little) — and past-future still matches it.")
}
