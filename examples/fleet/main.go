// Fleet: the paper's future-work proposal (§7) in action — a router spreads
// traffic over several serving replicas using the Past-Future estimator's
// predicted memory demand, and scales the fleet on the same signal.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"github.com/lightllm-go/lightllm"
	"github.com/lightllm-go/lightllm/internal/router"
	"github.com/lightllm-go/lightllm/internal/workload"
)

func main() {
	mkReplicas := func(n int) []*lightllm.Engine {
		reps := make([]*lightllm.Engine, n)
		for i := range reps {
			eng, err := lightllm.NewServing(lightllm.ServingConfig{
				Model:     "Llama2-7B-Chat",
				GPU:       "A100-80G",
				Scheduler: "past-future",
				Seed:      uint64(i + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			reps[i] = eng
		}
		return reps
	}

	// A bursty, size-skewed request stream (mixed chat + long-document)
	// offered near the fleet's knee: queues form transiently on unlucky
	// replicas, which is exactly where routing policy matters.
	mkStream := func() []*lightllm.Request {
		gen := workload.Uniform{Label: "mixed", InLo: 100, InHi: 6000, OutLo: 50, OutHi: 3000}
		r := lightllm.NewRNG(33)
		reqs := lightllm.BuildWorkload(gen, r, 300, 1, 4096)
		workload.AssignPoissonArrivals(reqs, r, 0.9, 0)
		return reqs
	}

	fmt.Println("routing 300 mixed-size requests over 3 Llama-2-7B replicas:")
	fmt.Printf("%-18s %10s %10s %12s\n", "policy", "meanTTFT", "p99TTFT", "imbalance")
	for _, pol := range []router.Policy{router.RoundRobin, router.LeastLoaded, router.FutureHeadroom} {
		rt, err := router.New(router.Config{Replicas: mkReplicas(3), Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		results := rt.Serve(mkStream(), 1e9)
		var sum, worst float64
		var n int
		for _, res := range results {
			for _, req := range res.Finished {
				sum += req.TTFT()
				if req.TTFT() > worst {
					worst = req.TTFT()
				}
				n++
			}
		}
		fmt.Printf("%-18s %9.2fs %9.2fs %12.3f\n", pol, sum/float64(n), worst, rt.Imbalance())
	}

	// Predictive autoscaling: start with one replica, grow under load.
	fmt.Println("\npredictive autoscaling (min 1, max 4 replicas, high-water 70%):")
	rt, err := router.New(router.Config{
		Replicas: mkReplicas(4),
		Policy:   router.FutureHeadroom,
		Scale:    &router.AutoScale{Min: 1, Max: 4, HighWater: 0.7, LowWater: 0.2, ActivationDelay: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.Serve(mkStream(), 1e9)
	out, in := rt.ScaleEvents()
	fmt.Printf("scale-out events: %d, scale-in events: %d, final active replicas: %d\n",
		out, in, rt.ActiveReplicas())
	fmt.Println("\nthe estimator that schedules a single batch also sizes the fleet:")
	fmt.Println("predicted future memory demand is the load signal (§7 of the paper).")
}
