// Capacity planning: how many concurrent chat clients can a deployment
// sustain under the paper's SLA? Sweeps closed-loop client counts on a
// simulated deployment and reports the goodput curve and the knee — the
// kind of what-if a serving operator answers before buying GPUs.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"github.com/lightllm-go/lightllm"
)

func main() {
	const duration, warmup = 200.0, 70.0
	sla := lightllm.SLASmall

	fmt.Printf("Llama2-13B-Chat on A100-80G, ShareGPT traffic, SLA %s\n\n", sla)
	fmt.Printf("%8s %12s %12s %8s\n", "clients", "goodput", "throughput", "SLA%")

	bestClients, bestGoodput := 0, 0.0
	for _, clients := range []int{10, 25, 50, 100, 200, 400} {
		eng, err := lightllm.NewServing(lightllm.ServingConfig{
			Model:        "Llama2-13B-Chat",
			GPU:          "A100-80G",
			Scheduler:    "past-future",
			QueueTimeout: sla.TTFT,
		})
		if err != nil {
			log.Fatal(err)
		}
		lightllm.NewClosedLoop(eng, lightllm.ShareGPT, lightllm.NewRNG(21), clients, 2048, 0, duration)
		res := eng.RunUntil(duration)
		sum := lightllm.Summarize(res.Finished, sla, warmup, duration)
		sum.AddTimedOut(res.TimedOut, warmup, duration)
		fmt.Printf("%8d %9.0f t/s %9.0f t/s %7.1f%%\n",
			clients, sum.Goodput, sum.Throughput, sum.SLARate()*100)
		if sum.Goodput > bestGoodput {
			bestGoodput, bestClients = sum.Goodput, clients
		}
	}
	fmt.Printf("\npeak goodput %.0f tok/s around %d clients — beyond the knee, extra\n", bestGoodput, bestClients)
	fmt.Println("clients only add abandoned (SLA-violating) requests, not served tokens.")
}
