// Quickstart: serve a ShareGPT-like workload on a simulated Llama-2-7B /
// A100-80G deployment with the Past-Future scheduler and print the run's
// throughput and SLA metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/lightllm-go/lightllm"
)

func main() {
	// 1. Describe the deployment: model, hardware, scheduler.
	eng, err := lightllm.NewServing(lightllm.ServingConfig{
		Model:     "Llama2-7B-Chat",
		GPU:       "A100-80G",
		Scheduler: "past-future", // the paper's scheduler (reserved=3%)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment ready: %d KV token slots\n", eng.Pool().CapacityTokens())

	// 2. Build a workload: 100 ShareGPT-like requests, all enqueued at t=0
	//    (a batch replay; the tail of the queue pays TTFT for the head),
	//    capped at max_new_tokens = 1024.
	r := lightllm.NewRNG(42)
	reqs := lightllm.BuildWorkload(lightllm.ShareGPT, r, 100, 1, 1024)
	eng.SubmitAll(reqs)

	// 3. Run to completion and inspect the result.
	res := eng.Run()
	fmt.Printf("served %d requests in %.1f simulated seconds\n", len(res.Finished), res.Duration)
	fmt.Printf("throughput: %.0f output tokens/s\n", res.Throughput())
	fmt.Printf("memory utilisation: %.1f%% (peak %d tokens)\n",
		res.MemUtilization*100, res.PeakUsedTokens)
	fmt.Printf("decode steps: %d, evictions: %d\n", res.DecodeSteps, res.Evictions)

	// 4. Check the paper's SLA (TTFT < 10 s, MTPOT < 1.5 s for 7B models).
	sum := lightllm.Summarize(res.Finished, lightllm.SLASmall, 0, res.Duration)
	fmt.Printf("SLA attainment: %.1f%% | goodput: %.0f tok/s | P99 TTFT %.2fs | P99 MTPOT %.2fs\n",
		sum.SLARate()*100, sum.Goodput, sum.P99TTFT, sum.P99MTPOT)
}
