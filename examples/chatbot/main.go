// Chatbot: a decode-heavy reasoning-chat service (ShareGPT-o1-like traffic:
// short prompts, very long chain-of-thought outputs) under the paper's SLA,
// comparing the three scheduler families with closed-loop clients — a
// miniature of the paper's Figure 7.
//
//	go run ./examples/chatbot
package main

import (
	"fmt"
	"log"

	"github.com/lightllm-go/lightllm"
)

func main() {
	const (
		clients = 60
		// Long enough that the scheduler's cold start (it needs a window of
		// finished requests before trusting its predictions) washes out —
		// the paper notes startup resolves "in a few minutes".
		duration = 600.0 // simulated seconds
		warmup   = 300.0
	)
	fmt.Printf("reasoning-chat service, %d closed-loop clients, SLA %s\n\n", clients, lightllm.SLASmall)
	fmt.Printf("%-14s %10s %12s %8s %10s\n", "scheduler", "goodput", "throughput", "SLA%", "evictions")

	for _, sched := range []string{"conservative", "aggressive", "past-future"} {
		eng, err := lightllm.NewServing(lightllm.ServingConfig{
			Model:     "Llama2-7B-Chat",
			GPU:       "A100-80G",
			Scheduler: sched,
			// SLA-aware clients: abandon requests whose TTFT budget passed.
			QueueTimeout: lightllm.SLASmall.TTFT,
		})
		if err != nil {
			log.Fatal(err)
		}
		lightllm.NewClosedLoop(eng, lightllm.ShareGPTO1, lightllm.NewRNG(7), clients, 8192, 0, duration)
		res := eng.RunUntil(duration)
		sum := lightllm.Summarize(res.Finished, lightllm.SLASmall, warmup, duration)
		sum.AddTimedOut(res.TimedOut, warmup, duration)
		fmt.Printf("%-14s %7.0f t/s %9.0f t/s %7.1f%% %10d\n",
			sched, sum.Goodput, sum.Throughput, sum.SLARate()*100, res.Evictions)
	}

	fmt.Println("\nthe Past-Future scheduler sustains the highest goodput: it admits")
	fmt.Println("as many requests as the future memory peak allows — no more (no")
	fmt.Println("harmful evictions), no fewer (no idle memory).")
}
