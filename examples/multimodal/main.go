// Multimodal: serve a TextVQA-like vision-language workload (576 image
// tokens per request for LLaVA-1.5) and compare the original static-batching
// implementation against LightLLM-style continuous batching with the
// Past-Future scheduler — the paper's Table 2 scenario, built directly on
// the public API.
//
//	go run ./examples/multimodal
package main

import (
	"fmt"
	"log"

	"github.com/lightllm-go/lightllm"
	"github.com/lightllm-go/lightllm/internal/workload"
)

func main() {
	const n = 800
	gen := workload.TextVQA(576) // LLaVA-1.5 image token count

	type mode struct {
		label string
		cfg   lightllm.ServingConfig
	}
	modes := []mode{
		{"origin (static batching)", lightllm.ServingConfig{
			Model: "LLaVA-1.5-7B", GPU: "A100-80G",
			Strategy: "static", StaticBatchSize: 64,
		}},
		{"LightLLM (past-future)", lightllm.ServingConfig{
			Model: "LLaVA-1.5-7B", GPU: "A100-80G",
			Scheduler: "past-future",
		}},
	}

	fmt.Printf("LLaVA-1.5-7B on A100-80G, %d TextVQA-like requests\n\n", n)
	var throughputs []float64
	for _, m := range modes {
		eng, err := lightllm.NewServing(m.cfg)
		if err != nil {
			log.Fatal(err)
		}
		eng.SubmitAll(lightllm.BuildWorkload(gen, lightllm.NewRNG(5), n, 1, 256))
		res := eng.Run()
		fmt.Printf("%-26s %7.0f output tok/s  (batch mean %.1f, mem %.1f%%)\n",
			m.label, res.Throughput(), res.MeanBatchSize, res.MemUtilization*100)
		throughputs = append(throughputs, res.Throughput())
	}
	fmt.Printf("\nspeedup: %.2fx — continuous batching removes the padded lanes and\n", throughputs[1]/throughputs[0])
	fmt.Println("the Past-Future scheduler keeps the batch as large as future memory allows.")
}
