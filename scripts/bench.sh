#!/bin/sh
# Runs the benchmark suites and records their results for the perf
# trajectory (see ROADMAP.md "Hot path & complexity"):
#
#   scripts/bench.sh          # both standing suites (make bench)
#   scripts/bench.sh micro    # hot-path micro-benchmarks -> BENCH_hotpath.json
#   scripts/bench.sh fleet    # fleet-scale scenarios     -> BENCH_fleet.json
#   scripts/bench.sh scale    # long-trace replay sweep   -> BENCH_scale.json
#
# The micro suite covers BenchmarkAdmitHotPath, BenchmarkFutureRequiredMemory,
# BenchmarkWindowSampler, the fleet-scale BenchmarkFleetRoute series, the
# cluster-front admission deadline heap, the MaxPrefillTokens trim, the
# prefix-cache longest-match lookup (BenchmarkPrefixMatch, 0 allocs steady
# state), and the SLO-aware chunk sizer (BenchmarkChunkSchedule, 0 allocs —
# it runs inside every chunked iteration). The fleet suite runs the
# cmd/fleetsim scenario family on one bursty ramp: reactive vs predictive
# autoscaling, disaggregated prefill/decode, the 2× overload-ramp admission
# comparison (shed on/off), the heterogeneous mixed-GPU fleet (cost-aware
# planner vs the premium flavor alone, compared on CostSeconds), the
# crash-storm fault trio (no faults / no recovery / full recovery, compared
# on SLA-met completions and served p99 TTFT), the multi-turn prefix-share
# sweep (cache-affinity vs cache-blind routing at equal provisioned
# capacity, compared on hit rate, served p99 TTFT, and prefill tokens
# computed), and the long-context chunked-prefill sweep (unchunked vs greedy
# fixed-chunk vs SLO-aware chunk scheduling at fixed capacity, compared on
# short-request served p99 TTFT and long-prompt attainment).
set -eu
cd "$(dirname "$0")/.."

mode="${1:-all}"

run_micro() {
	out=BENCH_hotpath.json
	tmp=$(mktemp)
	trap 'rm -f "$tmp"' EXIT

	go test -run '^$' -bench 'BenchmarkAdmitHotPath|BenchmarkFutureRequiredMemory' \
		-benchmem ./internal/core/ | tee "$tmp"
	go test -run '^$' -bench 'BenchmarkWindowSampler' \
		-benchmem ./internal/dist/ | tee -a "$tmp"
	go test -run '^$' -bench 'BenchmarkFleetRoute|BenchmarkClusterAdmit' \
		-benchmem ./internal/cluster/ | tee -a "$tmp"
	go test -run '^$' -bench 'BenchmarkPrefillTrim|BenchmarkChunkSchedule' \
		-benchmem ./internal/engine/ | tee -a "$tmp"
	go test -run '^$' -bench 'BenchmarkPrefixMatch' \
		-benchmem ./internal/kv/ | tee -a "$tmp"

	awk '
	BEGIN { print "["; first = 1 }
	/^Benchmark/ {
		name = $1; ns = ""; allocs = "null"
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			if ($i == "allocs/op") allocs = $(i - 1)
		}
		if (ns == "") next
		if (!first) printf(",\n")
		first = 0
		printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs)
	}
	END { print "\n]" }
	' "$tmp" > "$out"

	echo "wrote $out"
}

run_fleet() {
	# Fleet-scale SLA demos on the bursty ramp workload: reactive vs
	# predictive (Holt) autoscaling, the disaggregated prefill/decode
	# cluster with its dual-pool planner, the 2× overload ramp served three
	# ways (route-on-arrival, admission hold, deadline-aware shedding), the
	# heterogeneous mixed-GPU fleet judged on normalized CostSeconds, the
	# mid-burst crash-storm trio (no faults / no recovery / recovery
	# with retries, re-admission, and N+1 spares), the multi-turn
	# prefix-share sweep (cache-affinity vs cache-blind routing on a fixed
	# caching fleet, judged on hit rate, served p99 TTFT, and prefill
	# tokens computed), and the long-context chunked-prefill sweep
	# (long-prompt share × chunk policy {none, greedy, slo} at fixed
	# capacity, judged on short-request served p99 TTFT and long-prompt
	# attainment — the head-of-line-blocking acceptance axis).
	go run ./cmd/fleetsim -disagg -compare -overload -hetero -faults -multiturn -longctx -json BENCH_fleet.json

	# Fail loudly if the comparison did not refresh the record: a stale
	# BENCH_fleet.json would silently misreport the fleet trajectory.
	grep -q '"mode": "disaggregated-holt"' BENCH_fleet.json || {
		echo "BENCH_fleet.json is stale: no disaggregated mode recorded" >&2
		exit 1
	}
	grep -q '"mode": "overload-shed"' BENCH_fleet.json || {
		echo "BENCH_fleet.json is stale: no overload shedding mode recorded" >&2
		exit 1
	}
	grep -q '"mode": "hetero-cost"' BENCH_fleet.json || {
		echo "BENCH_fleet.json is stale: no heterogeneous cost-aware mode recorded" >&2
		exit 1
	}
	grep -q '"mode": "faults-recover"' BENCH_fleet.json || {
		echo "BENCH_fleet.json is stale: no fault-recovery mode recorded" >&2
		exit 1
	}
	grep -q '"mode": "multiturn-0.75-affinity"' BENCH_fleet.json || {
		echo "BENCH_fleet.json is stale: no multi-turn prefix-caching sweep recorded" >&2
		exit 1
	}
	grep -q '"prefill_savings_vs_blind"' BENCH_fleet.json || {
		echo "BENCH_fleet.json is stale: no cache-blind baseline for the prefix sweep" >&2
		exit 1
	}
	grep -q '"chunk_policy": "slo"' BENCH_fleet.json || {
		echo "BENCH_fleet.json is stale: no SLO-aware chunked-prefill arm recorded" >&2
		exit 1
	}
	grep -q '"chunk_policy": "none"' BENCH_fleet.json || {
		echo "BENCH_fleet.json is stale: no unchunked baseline for the long-context sweep" >&2
		exit 1
	}

	# Trace parity: the observability layer must be a strict observer. Run
	# the fault-storm trio once recorder-disabled and once with every
	# export armed — the reports (and stdout) must be byte-identical, or a
	# trace-enabled run is no longer measuring the system it claims to.
	obsdir=$(mktemp -d)
	go run ./cmd/fleetsim -faults -json "$obsdir/off.json" |
		grep -v '^wrote ' > "$obsdir/off.out"
	go run ./cmd/fleetsim -faults -json "$obsdir/on.json" \
		-trace "$obsdir/trace.json" -spans "$obsdir/spans.csv" \
		-timeseries "$obsdir/ts.csv" -requests "$obsdir/reqs.csv" |
		grep -v '^wrote ' > "$obsdir/on.out"
	if ! cmp -s "$obsdir/off.json" "$obsdir/on.json" ||
		! cmp -s "$obsdir/off.out" "$obsdir/on.out"; then
		echo "observability parity broken: trace-enabled run diverged from the recorder-disabled run" >&2
		rm -rf "$obsdir"
		exit 1
	fi
	echo "observability parity: traced fault-storm run bit-identical to untraced"
	rm -rf "$obsdir"
}

run_scale() {
	# Long-trace replay throughput (make bench-scale): a streamed diurnal
	# day trace through the sequential reference core, the 1-worker batched
	# core, and the full-width batched core, on identical regenerated
	# streams. The binary hard-fails unless all three reports are
	# byte-identical, so a BENCH_scale.json that exists at all certifies
	# core equivalence at this scale. Tune with e.g.
	# `SCALE_REQUESTS=10000000 scripts/bench.sh scale` for the full 10M day.
	go run ./cmd/fleetsim -scale \
		-scale-requests "${SCALE_REQUESTS:-1000000}" \
		-workers "${SCALE_WORKERS:-8}" \
		-scale-repeat "${SCALE_REPEAT:-2}" \
		-json BENCH_scale.json

	# Fail loudly if the sweep did not refresh the record: a stale
	# BENCH_scale.json would silently misreport the replay trajectory.
	grep -q '"reports_match": true' BENCH_scale.json || {
		echo "BENCH_scale.json is stale: no report-equality certificate recorded" >&2
		exit 1
	}
	grep -q "\"workers\": ${SCALE_WORKERS:-8}" BENCH_scale.json || {
		echo "BENCH_scale.json is stale: widest run missing" >&2
		exit 1
	}
}

case "$mode" in
all)
	run_micro
	run_fleet
	;;
micro)
	run_micro
	;;
fleet)
	run_fleet
	;;
scale)
	run_scale
	;;
*)
	echo "usage: $0 [all|micro|fleet|scale]" >&2
	exit 2
	;;
esac
