#!/bin/sh
# Runs the scheduling hot-path micro-benchmarks (BenchmarkAdmitHotPath,
# BenchmarkFutureRequiredMemory, BenchmarkWindowSampler) and records ns/op
# and allocs/op in BENCH_hotpath.json so successive PRs can track the perf
# trajectory. Invoked via `make bench`.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_hotpath.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkAdmitHotPath|BenchmarkFutureRequiredMemory' \
	-benchmem ./internal/core/ | tee "$tmp"
go test -run '^$' -bench 'BenchmarkWindowSampler' \
	-benchmem ./internal/dist/ | tee -a "$tmp"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
	name = $1; ns = ""; allocs = "null"
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (!first) printf(",\n")
	first = 0
	printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs)
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"
