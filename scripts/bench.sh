#!/bin/sh
# Runs the scheduling hot-path micro-benchmarks (BenchmarkAdmitHotPath,
# BenchmarkFutureRequiredMemory, BenchmarkWindowSampler, and the fleet-scale
# BenchmarkFleetRoute series) and records ns/op and allocs/op in
# BENCH_hotpath.json, then runs the cmd/fleetsim reactive-vs-predictive
# autoscaling comparison into BENCH_fleet.json, so successive PRs can track
# the perf trajectory. Invoked via `make bench`.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_hotpath.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkAdmitHotPath|BenchmarkFutureRequiredMemory' \
	-benchmem ./internal/core/ | tee "$tmp"
go test -run '^$' -bench 'BenchmarkWindowSampler' \
	-benchmem ./internal/dist/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkFleetRoute' \
	-benchmem ./internal/cluster/ | tee -a "$tmp"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
	name = $1; ns = ""; allocs = "null"
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (!first) printf(",\n")
	first = 0
	printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs)
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"

# Fleet-scale SLA demo: predictive (Holt) vs reactive autoscaling on the
# bursty ramp workload; attainment and replica-seconds per mode.
go run ./cmd/fleetsim -compare -json BENCH_fleet.json
