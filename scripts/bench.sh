#!/bin/sh
# Runs the scheduling hot-path micro-benchmarks (BenchmarkAdmitHotPath,
# BenchmarkFutureRequiredMemory, BenchmarkWindowSampler, the fleet-scale
# BenchmarkFleetRoute series, the cluster-front admission deadline heap,
# and the MaxPrefillTokens trim) and records ns/op and allocs/op in
# BENCH_hotpath.json, then runs the cmd/fleetsim autoscaling comparison
# (reactive vs predictive vs disaggregated prefill/decode) plus the 2×
# overload-ramp admission comparison (shed on/off) into BENCH_fleet.json,
# so successive PRs can track the perf trajectory. Invoked via `make bench`.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_hotpath.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkAdmitHotPath|BenchmarkFutureRequiredMemory' \
	-benchmem ./internal/core/ | tee "$tmp"
go test -run '^$' -bench 'BenchmarkWindowSampler' \
	-benchmem ./internal/dist/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkFleetRoute|BenchmarkClusterAdmit' \
	-benchmem ./internal/cluster/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkPrefillTrim' \
	-benchmem ./internal/engine/ | tee -a "$tmp"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
	name = $1; ns = ""; allocs = "null"
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (!first) printf(",\n")
	first = 0
	printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs)
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"

# Fleet-scale SLA demo on the bursty ramp workload: reactive vs predictive
# (Holt) autoscaling, plus the disaggregated prefill/decode cluster with
# its dual-pool planner; then the 2× overload ramp served three ways —
# route-on-arrival, admission hold without shedding, and deadline-aware
# shedding — recording goodput (SLA-met completions/s) and shed rates.
go run ./cmd/fleetsim -disagg -compare -overload -json BENCH_fleet.json

# Fail loudly if the comparison did not refresh the record: a stale
# BENCH_fleet.json would silently misreport the fleet trajectory.
grep -q '"mode": "disaggregated-holt"' BENCH_fleet.json || {
	echo "BENCH_fleet.json is stale: no disaggregated mode recorded" >&2
	exit 1
}
grep -q '"mode": "overload-shed"' BENCH_fleet.json || {
	echo "BENCH_fleet.json is stale: no overload shedding mode recorded" >&2
	exit 1
}
