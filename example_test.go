package lightllm_test

import (
	"fmt"

	"github.com/lightllm-go/lightllm"
)

// ExampleNewServing builds a deployment, serves a small batch workload,
// and checks the paper's SLA.
func ExampleNewServing() {
	eng, err := lightllm.NewServing(lightllm.ServingConfig{
		Model:     "Llama2-7B-Chat",
		GPU:       "A100-80G",
		Scheduler: "past-future",
	})
	if err != nil {
		panic(err)
	}
	reqs := lightllm.BuildWorkload(lightllm.ShareGPT, lightllm.NewRNG(1), 10, 1, 256)
	eng.SubmitAll(reqs)
	res := eng.Run()
	fmt.Println(len(res.Finished), "requests served,", res.Evictions, "evictions")
	// Output: 10 requests served, 0 evictions
}

// ExampleNewScheduler shows the available scheduler families.
func ExampleNewScheduler() {
	for _, name := range []string{"past-future", "aggressive", "conservative", "oracle"} {
		s, err := lightllm.NewScheduler(name, 0, 1)
		if err != nil {
			panic(err)
		}
		fmt.Println(s.Name())
	}
	// Output:
	// past-future(reserved=3%)
	// aggressive(watermark=97%)
	// conservative
	// oracle
}

// ExampleSummarize computes goodput under the paper's 7B/13B SLA.
func ExampleSummarize() {
	eng, _ := lightllm.NewServing(lightllm.ServingConfig{
		Model: "Llama2-7B-Chat", GPU: "A100-80G", Scheduler: "oracle",
	})
	eng.SubmitAll(lightllm.BuildWorkload(lightllm.ShareGPT, lightllm.NewRNG(2), 20, 1, 256))
	res := eng.Run()
	sum := lightllm.Summarize(res.Finished, lightllm.SLASmall, 0, res.Duration)
	fmt.Println(sum.Total, "requests, SLA rate", sum.SLARate() == 1.0)
	// Output: 20 requests, SLA rate true
}
